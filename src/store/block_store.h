// Durable block store: a directory of append-only segment logs plus an
// in-memory height -> (segment, offset) index.
//
// The store is engine-agnostic: each record is the block's canonical
// 104-byte header followed by an opaque, engine-encoded body (see
// store/block_serde.h for the typed encoding and store/block_source.h for
// the typed read path with its LRU cache). Keeping the header first means
// the store can authenticate itself at open time — height sequence,
// prev-hash linkage, timestamp monotonicity — without knowing the
// accumulator engine, and can serve cold-start needs (timestamp index
// rebuild, light-client re-sync) from headers alone.
//
// Layout:   <dir>/seg-000000.log, <dir>/seg-000001.log, ...
// A segment rolls over once it exceeds `Options::segment_target_bytes`, so
// individual files stay mmap/rsync/backup friendly while the chain grows
// without bound. Only the *last* segment may carry a torn tail after a
// crash; `Open` truncates it and re-verifies the surviving prefix's header
// hash chain. A torn or corrupt record in an earlier segment is reported as
// Corruption — that is bit rot or tampering, not a crash artifact.
//
// Memory: the store keeps all headers (104 B/block) and the offset index
// (16 B/block) resident — ~120 MB per million blocks — while block bodies
// (objects, multisets, digests; the RAM hog) stay on disk until a
// BlockSource pulls them through its cache.

#ifndef VCHAIN_STORE_BLOCK_STORE_H_
#define VCHAIN_STORE_BLOCK_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/header.h"
#include "chain/light_client.h"
#include "core/timestamp_index.h"
#include "store/segment_log.h"

namespace vchain::store {

class BlockStore {
 public:
  struct Options {
    /// Roll to a new segment file once the current one exceeds this.
    uint64_t segment_target_bytes = 64ull << 20;
    /// fsync after every append (crash-durable per block). Off, durability
    /// is batched: call `Sync()` at commit points (still torn-tail safe —
    /// an unsynced crash loses a suffix, never the middle).
    bool sync_every_append = false;
    /// All file and directory I/O goes through this seam. nullptr ->
    /// Env::Default() (production posix). Tests swap in a
    /// FaultInjectionEnv; the pointer must outlive the store.
    Env* env = nullptr;
  };

  struct RecoveryStats {
    size_t blocks = 0;
    size_t segments = 0;
    uint64_t truncated_bytes = 0;  ///< torn bytes dropped from the tail
  };

  /// Open (or create) the store rooted at directory `dir`: recover segments,
  /// truncate any torn tail, and verify the surviving header hash chain.
  static Result<std::unique_ptr<BlockStore>> Open(const std::string& dir,
                                                  Options options,
                                                  RecoveryStats* stats = nullptr);
  static Result<std::unique_ptr<BlockStore>> Open(const std::string& dir) {
    return Open(dir, Options{});
  }

  /// Append block `header` + engine-encoded `body` at the next height.
  /// O(1): one framed write (plus an fsync under `sync_every_append`).
  /// After a failed append the store refuses further writes (the on-disk
  /// state is ambiguous) — reads stay valid; reopen the store to resume
  /// appending through its recovery path.
  Status Append(const chain::BlockHeader& header, ByteSpan body);

  /// Read and CRC-check the full record (104-byte header || engine-encoded
  /// body) of `height`. Callers decode the body at offset
  /// `BlockHeader::kSerializedSize` (see store/block_serde.h) — the header
  /// prefix is not stripped, so no byte of the body is ever re-copied.
  Result<Bytes> ReadRecord(uint64_t height) const;

  /// fsync the active segment (earlier segments are synced when rolled) and
  /// advance the on-disk commit watermark. The watermark is what lets the
  /// next Open distinguish bit rot in fsync'd data (Corruption) from
  /// unsynced-crash writeback artifacts (recovered by truncation).
  Status Sync();

  uint64_t NumBlocks() const { return headers_.size(); }
  bool Empty() const { return headers_.empty(); }
  const std::vector<chain::BlockHeader>& headers() const { return headers_; }
  const chain::BlockHeader& HeaderAt(uint64_t height) const {
    return headers_.at(height);
  }
  const std::string& dir() const { return dir_; }
  size_t NumSegments() const { return segments_.size(); }
  /// True once a failed append/sync has put the store into write-refusal
  /// (reads stay valid; reopen to resume appending).
  bool broken() const { return broken_; }

  // --- cold start ------------------------------------------------------------

  /// Rebuild the miner/SP timestamp index from the persisted headers.
  core::TimestampIndex RebuildTimestampIndex() const {
    core::TimestampIndex idx;
    for (const chain::BlockHeader& h : headers_) idx.Append(h.timestamp);
    return idx;
  }

  /// Feed all persisted headers to a light client (same contract as
  /// ChainBuilder::SyncLightClient, but from disk — no re-mining).
  Status SyncLightClient(chain::LightClient* client) const {
    for (uint64_t h = client->Height(); h < headers_.size(); ++h) {
      VCHAIN_RETURN_IF_ERROR(client->SyncHeader(headers_[h]));
    }
    return Status::OK();
  }

 private:
  struct RecordRef {
    uint32_t segment = 0;
    uint64_t offset = 0;
  };

  BlockStore(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {
    env_ = options_.env != nullptr ? options_.env : Env::Default();
  }

  static std::string SegmentPath(const std::string& dir, uint32_t index);
  Status OpenSegments(RecoveryStats* stats);
  Status RollSegment();
  /// Persist "everything up to the active segment's current end is fsync'd"
  /// (the COMMIT sidecar). Called after every successful fsync point.
  Status WriteCommitWatermark();

  /// Validate that `header` extends the current chain tip.
  Status CheckContinuity(const chain::BlockHeader& header) const;

  std::string dir_;
  Options options_;
  Env* env_ = nullptr;
  bool broken_ = false;  ///< a failed append left ambiguous on-disk state
  /// COMMIT sidecar's directory entry known durable (SyncDir'd).
  bool commit_entry_synced_ = false;
  std::vector<std::unique_ptr<SegmentLog>> segments_;
  std::vector<chain::BlockHeader> headers_;
  std::vector<RecordRef> index_;  // height -> record location
};

}  // namespace vchain::store

#endif  // VCHAIN_STORE_BLOCK_STORE_H_

// BlockSource — the read abstraction the query stack consumes.
//
// QueryProcessor, the subscription drain, and the MHT baseline used to take
// `const std::vector<Block>*`, hard-wiring the SP to a fully-resident chain.
// BlockSource decouples them from where blocks live:
//
//   * VectorBlockSource — zero-cost adapter over an in-memory chain
//     (ChainBuilder::blocks()); behavior identical to the old code path.
//   * StoreBlockSource  — blocks decoded on demand from a BlockStore through
//     an LRU cache, so the SP serves chains far larger than RAM while hot
//     query windows stay memory-resident.
//
// Reference contract: the Block& returned by BlockAt stays valid until the
// next BlockAt call on the same source (the store-backed source may evict on
// a later miss). Every consumer in this codebase holds at most the current
// block across other work, which the query walk's one-block-at-a-time
// structure guarantees.
//
// TimestampAt exists so height-range lookups never fault a cold block in:
// the store keeps all headers resident, so timestamp probes are pure memory
// reads in both implementations.
//
// Both sources here are single-threaded (one query walk at a time). Many
// query threads sharing one disk-backed cache use
// store/concurrent_block_source.h, which vends per-query handles over a
// shared, locked LRU of shared_ptr-owned blocks.

#ifndef VCHAIN_STORE_BLOCK_SOURCE_H_
#define VCHAIN_STORE_BLOCK_SOURCE_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/lru.h"
#include "common/span.h"
#include "store/block_serde.h"

namespace vchain::store {

template <typename Engine>
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  virtual uint64_t NumBlocks() const = 0;
  /// The block at `height` (< NumBlocks()). The reference is valid until the
  /// next BlockAt call on this source.
  virtual const core::Block<Engine>& BlockAt(uint64_t height) const = 0;
  /// The block's timestamp, without materializing the block.
  virtual uint64_t TimestampAt(uint64_t height) const = 0;
};

/// In-memory chain adapter (the pre-store behavior, verbatim). The vector
/// must start at genesis — a pruned ChainBuilder's `blocks()` window does
/// NOT qualify (its indices are offset by `base_height()`); serve a pruned
/// chain from its attached store via StoreBlockSource instead.
template <typename Engine>
class VectorBlockSource final : public BlockSource<Engine> {
 public:
  explicit VectorBlockSource(const std::vector<core::Block<Engine>>* blocks)
      : blocks_(blocks) {}

  uint64_t NumBlocks() const override { return blocks_->size(); }
  const core::Block<Engine>& BlockAt(uint64_t height) const override {
    return (*blocks_)[height];
  }
  uint64_t TimestampAt(uint64_t height) const override {
    return (*blocks_)[height].header.timestamp;
  }

 private:
  const std::vector<core::Block<Engine>>* blocks_;
};

/// Disk-backed source: BlockStore reads + decoded-block LRU cache.
template <typename Engine>
class StoreBlockSource final : public BlockSource<Engine> {
 public:
  using CacheStats = LruStats;

  /// `capacity` bounds the number of decoded blocks held in memory (>= 1).
  /// Size it to the expected hot window: a subscription SP wants at least
  /// the max skip distance, an analytics SP the typical query window.
  StoreBlockSource(const Engine& engine, const BlockStore* store,
                   size_t capacity = kDefaultCacheBlocks)
      : engine_(engine), store_(store), cache_(capacity < 1 ? 1 : capacity) {}

  static constexpr size_t kDefaultCacheBlocks = 256;

  uint64_t NumBlocks() const override { return store_->NumBlocks(); }

  uint64_t TimestampAt(uint64_t height) const override {
    return store_->HeaderAt(height).timestamp;
  }

  const core::Block<Engine>& BlockAt(uint64_t height) const override {
    auto block = TryBlockAt(height);
    if (!block.ok()) {
      // The store verified CRCs and the header chain at open; failing here
      // means the disk mutated underneath a live SP. No graceful answer
      // exists at this interface — fail loudly rather than serve garbage.
      std::fprintf(stderr, "StoreBlockSource: block %llu unreadable: %s\n",
                   static_cast<unsigned long long>(height),
                   block.status().ToString().c_str());
      std::abort();
    }
    return *block.value();
  }

  /// Status-returning variant for callers that can surface I/O errors.
  Result<const core::Block<Engine>*> TryBlockAt(uint64_t height) const {
    if (const core::Block<Engine>* hit = cache_.Get(height)) {
      return hit;
    }
    // Cache miss = real store read + decode; attach it to the walk span of
    // whatever query is ambiently tracing on this thread (no-op otherwise).
    const trace::AmbientSpan amb = trace::CurrentSpan();
    trace::ScopedSpan read_span(amb.tree, "block_read",
                                amb.parent != 0 ? amb.parent : trace::kRootSpan);
    read_span.Note("height", height);
    auto block = ReadBlockFromStore(engine_, *store_, height);
    if (!block.ok()) return block.status();
    return cache_.Put(height, block.TakeValue());
  }

  const CacheStats& cache_stats() const { return cache_.stats(); }
  size_t cached_blocks() const { return cache_.size(); }
  size_t capacity() const { return cache_.capacity(); }

 private:
  const Engine& engine_;
  const BlockStore* store_;
  mutable LruMap<uint64_t, core::Block<Engine>> cache_;
};

}  // namespace vchain::store

#endif  // VCHAIN_STORE_BLOCK_SOURCE_H_

#include "store/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/rand.h"
#include "store/posix_io.h"

namespace vchain::store {

namespace fs = std::filesystem;

// --- posix env ---------------------------------------------------------------

namespace {

class PosixFile final : public Env::File {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<size_t> Read(uint64_t offset, uint8_t* buf, size_t n) override {
    return PReadFull(fd_, offset, buf, n, path_);
  }

  Status Write(uint64_t offset, const uint8_t* buf, size_t n) override {
    return PWriteFull(fd_, offset, buf, n, path_);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return IoError("fsync", path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return IoError("ftruncate", path_);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) return IoError("lseek", path_);
    return static_cast<uint64_t>(end);
  }

  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return IoError("open", path);
    return std::unique_ptr<File>(new PosixFile(path, fd));
  }

  Result<bool> FileExists(const std::string& path) override {
    std::error_code ec;
    bool exists = fs::exists(path, ec);
    if (ec) return Status::Internal("stat " + path + ": " + ec.message());
    return exists;
  }

  Status DeleteFile(const std::string& path) override {
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) return Status::Internal("remove " + path + ": " + ec.message());
    return Status::OK();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::Internal("create_directories " + dir + ": " +
                              ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::Internal("list " + dir + ": " + ec.message());
    return names;
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return IoError("open dir", dir);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return IoError("fsync dir", dir);
    return Status::OK();
  }
};

Status InjectedError(const char* what, const std::string& path, int err) {
  return Status::Internal(std::string(what) + " " + path + ": " +
                          std::strerror(err) + " (injected)");
}

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

// --- fault-injection env -----------------------------------------------------

/// Wraps a base file; every mutation is journaled in the env's per-path
/// state so PowerCut can replay an arbitrary subset of unsynced ops.
class FaultInjectionFile final : public Env::File {
 public:
  FaultInjectionFile(FaultInjectionEnv* env, std::unique_ptr<Env::File> base)
      : env_(env), base_(std::move(base)) {}

  Result<size_t> Read(uint64_t offset, uint8_t* buf, size_t n) override {
    return base_->Read(offset, buf, n);
  }

  Status Write(uint64_t offset, const uint8_t* buf, size_t n) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    const FaultInjectionEnv::Fault* fault = env_->MaybeWriteFault();
    size_t applied = n;
    if (fault != nullptr) {
      // A short write leaves a torn prefix of the frame on disk; a plain
      // failure leaves nothing.
      applied = fault->short_write && n > 1 ? n / 2 : 0;
    }
    if (applied > 0) {
      VCHAIN_RETURN_IF_ERROR(ApplyWrite(offset, buf, applied));
    }
    if (fault != nullptr) {
      return InjectedError("pwrite", base_->path(), fault->err);
    }
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    const FaultInjectionEnv::Fault* fault = env_->MaybeSyncFault();
    if (fault != nullptr) {
      // fsyncgate semantics: after a failed fsync nothing new is known
      // durable — the journal keeps every record so a later PowerCut can
      // still drop them.
      return InjectedError("fsync", base_->path(), fault->err);
    }
    VCHAIN_RETURN_IF_ERROR(base_->Sync());
    env_->files_[base_->path()].unsynced.clear();
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    const FaultInjectionEnv::Fault* fault = env_->MaybeWriteFault();
    if (fault != nullptr) {
      return InjectedError("ftruncate", base_->path(), fault->err);
    }
    auto old_size = base_->Size();
    if (!old_size.ok()) return old_size.status();
    FaultInjectionEnv::WriteRecord rec;
    rec.offset = size;
    rec.old_size = old_size.value();
    rec.is_truncate = true;
    if (size < rec.old_size) {
      rec.preimage.resize(rec.old_size - size);
      auto got = base_->Read(size, rec.preimage.data(), rec.preimage.size());
      if (!got.ok()) return got.status();
      rec.preimage.resize(got.value());
    }
    VCHAIN_RETURN_IF_ERROR(base_->Truncate(size));
    env_->files_[base_->path()].unsynced.push_back(std::move(rec));
    return Status::OK();
  }

  Result<uint64_t> Size() override { return base_->Size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  /// Journal preimage + data, then write through. Caller holds env mu_.
  Status ApplyWrite(uint64_t offset, const uint8_t* buf, size_t n) {
    auto old_size = base_->Size();
    if (!old_size.ok()) return old_size.status();
    FaultInjectionEnv::WriteRecord rec;
    rec.offset = offset;
    rec.old_size = old_size.value();
    rec.data.assign(buf, buf + n);
    if (offset < rec.old_size) {
      size_t overlap =
          static_cast<size_t>(std::min<uint64_t>(rec.old_size - offset, n));
      rec.preimage.resize(overlap);
      auto got = base_->Read(offset, rec.preimage.data(), overlap);
      if (!got.ok()) return got.status();
      rec.preimage.resize(got.value());
    }
    VCHAIN_RETURN_IF_ERROR(base_->Write(offset, buf, n));
    env_->files_[base_->path()].unsynced.push_back(std::move(rec));
    return Status::OK();
  }

  FaultInjectionEnv* env_;
  std::unique_ptr<Env::File> base_;
};

Result<std::unique_ptr<Env::File>> FaultInjectionEnv::OpenFile(
    const std::string& path) {
  auto existed = base_->FileExists(path);
  if (!existed.ok()) return existed.status();
  auto file = base_->OpenFile(path);
  if (!file.ok()) return file.status();
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& state = files_[path];  // keeps journal across reopen
    if (!existed.value()) state.entry_pending = true;
  }
  return std::unique_ptr<File>(
      new FaultInjectionFile(this, file.TakeValue()));
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return base_->DeleteFile(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  const Fault* fault = MaybeSyncFault();
  if (fault != nullptr) return InjectedError("fsync dir", dir, fault->err);
  VCHAIN_RETURN_IF_ERROR(base_->SyncDir(dir));
  for (auto& [path, state] : files_) {
    if (fs::path(path).parent_path().string() == dir) {
      state.entry_pending = false;
    }
  }
  return Status::OK();
}

void FaultInjectionEnv::ScheduleFault(Fault fault) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_ = fault;
  fault_writes_seen_ = 0;
  fault_syncs_seen_ = 0;
}

uint64_t FaultInjectionEnv::total_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_writes_;
}

uint64_t FaultInjectionEnv::total_syncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_syncs_;
}

const FaultInjectionEnv::Fault* FaultInjectionEnv::MaybeWriteFault() {
  ++total_writes_;
  if (fault_.op != Fault::Op::kWrite) return nullptr;
  if (++fault_writes_seen_ != fault_.at) return nullptr;
  return &fault_;
}

const FaultInjectionEnv::Fault* FaultInjectionEnv::MaybeSyncFault() {
  ++total_syncs_;
  if (fault_.op != Fault::Op::kSync) return nullptr;
  if (++fault_syncs_seen_ != fault_.at) return nullptr;
  return &fault_;
}

void FaultInjectionEnv::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
  fault_ = Fault{};
}

Status FaultInjectionEnv::PowerCut(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  Rng rng(seed);
  for (auto it = files_.begin(); it != files_.end();) {
    const std::string& path = it->first;
    FileState& state = it->second;

    // A file whose directory entry was never fsync'd may vanish wholesale.
    if (state.entry_pending && rng.Chance(0.5)) {
      VCHAIN_RETURN_IF_ERROR(base_->DeleteFile(path));
      it = files_.erase(it);
      continue;
    }
    if (state.unsynced.empty()) {
      ++it;
      continue;
    }

    auto file = base_->OpenFile(path);
    if (!file.ok()) return file.status();
    auto size = file.value()->Size();
    if (!size.ok()) return size.status();
    Bytes content(size.value());
    if (!content.empty()) {
      auto got = file.value()->Read(0, content.data(), content.size());
      if (!got.ok()) return got.status();
    }

    // Rewind to the last-fsync'd image: undo every journaled op in strict
    // reverse order (LIFO undo is exact).
    for (auto rec = state.unsynced.rbegin(); rec != state.unsynced.rend();
         ++rec) {
      if (rec->is_truncate) {
        content.resize(rec->old_size, 0);
        std::copy(rec->preimage.begin(), rec->preimage.end(),
                  content.begin() + static_cast<ptrdiff_t>(rec->offset));
      } else {
        std::copy(rec->preimage.begin(), rec->preimage.end(),
                  content.begin() + static_cast<ptrdiff_t>(rec->offset));
        content.resize(rec->old_size);
      }
    }

    // Unordered writeback: re-apply an arbitrary subset, some torn to a
    // prefix. A gap left by a dropped write reads back as fresh (zero)
    // blocks, exactly what a never-written disk region contains.
    for (const WriteRecord& rec : state.unsynced) {
      if (rec.is_truncate) {
        if (rng.Chance(0.5)) content.resize(rec.offset);
        continue;
      }
      double roll = rng.NextDouble();
      size_t applied = rec.data.size();
      if (roll < 0.35) {
        applied = 0;  // dropped
      } else if (roll < 0.55 && rec.data.size() > 1) {
        applied = 1 + rng.Below(rec.data.size() - 1);  // torn prefix
      }
      if (applied == 0) continue;
      if (content.size() < rec.offset + applied) {
        content.resize(rec.offset + applied, 0);
      }
      std::copy(rec.data.begin(),
                rec.data.begin() + static_cast<ptrdiff_t>(applied),
                content.begin() + static_cast<ptrdiff_t>(rec.offset));
    }

    VCHAIN_RETURN_IF_ERROR(file.value()->Truncate(content.size()));
    if (!content.empty()) {
      VCHAIN_RETURN_IF_ERROR(
          file.value()->Write(0, content.data(), content.size()));
    }
    VCHAIN_RETURN_IF_ERROR(file.value()->Sync());
    state.unsynced.clear();
    state.entry_pending = false;
    ++it;
  }
  // What survived is the new durable baseline.
  for (auto& [path, state] : files_) state.unsynced.clear();
  return Status::OK();
}

}  // namespace vchain::store

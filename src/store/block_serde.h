// Engine-typed block <-> bytes codec for the durable store.
//
// A block record's body carries everything the miner materialized beyond the
// header — objects, transformed multisets, digests, the intra-block index
// and the skip entries — so that a block read back from disk answers queries
// with *bit-identical* VOs to the in-memory original: no digest is ever
// recomputed on load (recomputing acc1/acc2 digests costs multiexps; the
// bytes are canonical, so storing them is both faster and provably
// identical).
//
// Decoding follows the library-wide hostile-input rule (common/serde.h):
// every count is capped before the allocation it sizes, every read is
// bounds-checked, and any inconsistency returns Status::Corruption — never a
// crash or an OOM-sized allocation — so a corrupt disk cannot take down the
// SP at startup.

#ifndef VCHAIN_STORE_BLOCK_SERDE_H_
#define VCHAIN_STORE_BLOCK_SERDE_H_

#include <utility>

#include "core/block.h"
#include "store/block_store.h"

namespace vchain::store {

/// Caps mirror the VO deserializer's (core/vo.h): far above any real block,
/// far below an allocation that could hurt.
inline constexpr uint32_t kMaxObjectsPerBlock = 1u << 22;
inline constexpr uint32_t kMaxIndexNodes = 1u << 23;  // 2n-1 for n leaves
inline constexpr uint32_t kMaxSkipLevels = 64;

namespace detail {

inline Status GetHash32(ByteReader* r, chain::Hash32* out) {
  Bytes buf;
  VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
  std::copy(buf.begin(), buf.end(), out->begin());
  return Status::OK();
}

}  // namespace detail

/// Encode the body (everything but the header) of `block`.
template <typename Engine>
void SerializeBlockBody(const Engine& engine, const core::Block<Engine>& block,
                        ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(block.objects.size()));
  for (const chain::Object& o : block.objects) o.Serialize(w);
  for (const accum::Multiset& m : block.object_ws) m.Serialize(w);
  for (const auto& d : block.leaf_digests) engine.SerializeDigest(d, w);
  for (const chain::Hash32& h : block.leaf_hashes) {
    w->PutFixed(crypto::HashSpan(h));
  }

  w->PutU32(static_cast<uint32_t>(block.nodes.size()));
  for (const core::IndexNode<Engine>& n : block.nodes) {
    n.w.Serialize(w);
    engine.SerializeDigest(n.digest, w);
    w->PutFixed(crypto::HashSpan(n.hash));
    w->PutU32(static_cast<uint32_t>(n.left));
    w->PutU32(static_cast<uint32_t>(n.right));
    w->PutU32(static_cast<uint32_t>(n.object_index));
  }
  w->PutU32(static_cast<uint32_t>(block.root_index));

  block.block_w.Serialize(w);
  engine.SerializeDigest(block.block_digest, w);

  w->PutU32(static_cast<uint32_t>(block.skips.size()));
  for (const core::SkipEntry<Engine>& s : block.skips) {
    w->PutU64(s.distance);
    w->PutFixed(crypto::HashSpan(s.preskipped_hash));
    s.w.Serialize(w);
    engine.SerializeDigest(s.digest, w);
    w->PutFixed(crypto::HashSpan(s.entry_hash));
  }
}

/// Decode a body produced by SerializeBlockBody; `header` (authenticated by
/// the store's hash-chain scan) becomes the block's header.
template <typename Engine>
Status DeserializeBlockBody(const Engine& engine,
                            const chain::BlockHeader& header, ByteReader* r,
                            core::Block<Engine>* out) {
  out->header = header;

  uint32_t num_objects = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&num_objects));
  if (num_objects == 0) {
    // AppendBlock rejects empty blocks, so no honest record has zero
    // objects — and a zero-object, zero-node body would send the indexed
    // query walk into nodes[-1].
    return Status::Corruption("block record: empty block");
  }
  if (num_objects > kMaxObjectsPerBlock) {
    return Status::Corruption("block record: object count too large");
  }
  // A serialized object is at least 24 bytes; never size an allocation from
  // a count the buffer cannot hold (hostile-length rule, common/serde.h).
  if (num_objects > r->Remaining() / 24) {
    return Status::Corruption("block record: object count exceeds buffer");
  }
  out->objects.resize(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    VCHAIN_RETURN_IF_ERROR(chain::Object::Deserialize(r, &out->objects[i]));
  }
  out->object_ws.resize(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    VCHAIN_RETURN_IF_ERROR(accum::Multiset::Deserialize(r, &out->object_ws[i]));
  }
  out->leaf_digests.resize(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    VCHAIN_RETURN_IF_ERROR(engine.DeserializeDigest(r, &out->leaf_digests[i]));
  }
  out->leaf_hashes.resize(num_objects);
  for (uint32_t i = 0; i < num_objects; ++i) {
    VCHAIN_RETURN_IF_ERROR(detail::GetHash32(r, &out->leaf_hashes[i]));
  }

  uint32_t num_nodes = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&num_nodes));
  if (num_nodes > kMaxIndexNodes) {
    return Status::Corruption("block record: index node count too large");
  }
  if (num_nodes > r->Remaining() / 48) {  // w + digest + hash + 3 indices
    return Status::Corruption("block record: node count exceeds buffer");
  }
  out->nodes.resize(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    core::IndexNode<Engine>& n = out->nodes[i];
    VCHAIN_RETURN_IF_ERROR(accum::Multiset::Deserialize(r, &n.w));
    VCHAIN_RETURN_IF_ERROR(engine.DeserializeDigest(r, &n.digest));
    VCHAIN_RETURN_IF_ERROR(detail::GetHash32(r, &n.hash));
    uint32_t left = 0, right = 0, object_index = 0;
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&left));
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&right));
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&object_index));
    n.left = static_cast<int32_t>(left);
    n.right = static_cast<int32_t>(right);
    n.object_index = static_cast<int32_t>(object_index);
    // Shape invariants the query walk (EmitSubtree) relies on, so a
    // CRC-valid but malformed record can never crash the SP: a leaf has no
    // children; an internal node's children point strictly *backwards*
    // (the builder appends parents after children), which rules out
    // out-of-range indices, self references, and cycles in one check.
    if (n.object_index != -1) {
      if (static_cast<uint32_t>(n.object_index) >= num_objects) {
        return Status::Corruption("block record: leaf object out of range");
      }
      if (n.left != -1 || n.right != -1) {
        return Status::Corruption("block record: leaf node has children");
      }
    } else {
      if (n.left < 0 || static_cast<uint32_t>(n.left) >= i || n.right < 0 ||
          static_cast<uint32_t>(n.right) >= i) {
        return Status::Corruption("block record: non-topological index child");
      }
    }
  }
  uint32_t root = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&root));
  out->root_index = static_cast<int32_t>(root);
  // A record either carries no intra index (kNil: zero nodes, root -1) or a
  // complete one (a binary tree over n leaves has exactly 2n-1 nodes and a
  // valid root). Anything in between would send the query walk into
  // nodes[-1] or a partial tree.
  if (num_nodes == 0) {
    if (out->root_index != -1) {
      return Status::Corruption("block record: root without index nodes");
    }
  } else {
    if (num_nodes != 2 * num_objects - 1) {
      return Status::Corruption("block record: index node count mismatch");
    }
    if (out->root_index < 0 ||
        static_cast<uint32_t>(out->root_index) >= num_nodes) {
      return Status::Corruption("block record: root index out of range");
    }
  }

  VCHAIN_RETURN_IF_ERROR(accum::Multiset::Deserialize(r, &out->block_w));
  VCHAIN_RETURN_IF_ERROR(engine.DeserializeDigest(r, &out->block_digest));

  uint32_t num_skips = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&num_skips));
  if (num_skips > kMaxSkipLevels) {
    return Status::Corruption("block record: too many skip levels");
  }
  out->skips.resize(num_skips);
  for (uint32_t i = 0; i < num_skips; ++i) {
    core::SkipEntry<Engine>& s = out->skips[i];
    VCHAIN_RETURN_IF_ERROR(r->GetU64(&s.distance));
    VCHAIN_RETURN_IF_ERROR(detail::GetHash32(r, &s.preskipped_hash));
    VCHAIN_RETURN_IF_ERROR(accum::Multiset::Deserialize(r, &s.w));
    VCHAIN_RETURN_IF_ERROR(engine.DeserializeDigest(r, &s.digest));
    VCHAIN_RETURN_IF_ERROR(detail::GetHash32(r, &s.entry_hash));
  }
  if (!r->AtEnd()) {
    return Status::Corruption("block record: trailing bytes");
  }
  return Status::OK();
}

/// Encode `block` and append it to `store` at the next height. This is the
/// miner's O(1) write-through path (ChainBuilder::AttachStore).
template <typename Engine>
Status AppendBlockToStore(const Engine& engine,
                          const core::Block<Engine>& block,
                          BlockStore* store) {
  ByteWriter w;
  SerializeBlockBody(engine, block, &w);
  return store->Append(block.header,
                       ByteSpan(w.bytes().data(), w.bytes().size()));
}

/// Read and decode the block at `height`.
template <typename Engine>
Result<core::Block<Engine>> ReadBlockFromStore(const Engine& engine,
                                               const BlockStore& store,
                                               uint64_t height) {
  auto record = store.ReadRecord(height);
  if (!record.ok()) return record.status();
  // Decode past the record's header prefix in place (no body copy).
  ByteReader r(ByteSpan(record.value().data() +
                            chain::BlockHeader::kSerializedSize,
                        record.value().size() -
                            chain::BlockHeader::kSerializedSize));
  core::Block<Engine> block;
  VCHAIN_RETURN_IF_ERROR(
      DeserializeBlockBody(engine, store.HeaderAt(height), &r, &block));
  return block;
}

}  // namespace vchain::store

#endif  // VCHAIN_STORE_BLOCK_SERDE_H_

// Internal POSIX I/O helpers shared by the storage layer (segment_log.cc,
// block_store.cc): EINTR-retrying positional reads/writes and errno ->
// Status mapping. Positional I/O only — the storage layer never relies on
// a file descriptor's cursor, so failed or partial operations are always
// retryable at the same offset.

#ifndef VCHAIN_STORE_POSIX_IO_H_
#define VCHAIN_STORE_POSIX_IO_H_

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace vchain::store {

inline Status IoError(const std::string& what, const std::string& path) {
  return Status::Internal(what + " " + path + ": " + std::strerror(errno));
}

/// pread exactly `n` bytes; returns the count actually read (short only at
/// EOF).
inline Result<size_t> PReadFull(int fd, uint64_t offset, uint8_t* buf,
                                size_t n, const std::string& path) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd, buf + got, n - got,
                        static_cast<off_t>(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("pread", path);
    }
    if (r == 0) break;  // EOF
    got += static_cast<size_t>(r);
  }
  return got;
}

/// pwrite exactly `n` bytes at `offset`.
inline Status PWriteFull(int fd, uint64_t offset, const uint8_t* buf,
                         size_t n, const std::string& path) {
  size_t put = 0;
  while (put < n) {
    ssize_t r = ::pwrite(fd, buf + put, n - put,
                         static_cast<off_t>(offset + put));
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("pwrite", path);
    }
    put += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace vchain::store

#endif  // VCHAIN_STORE_POSIX_IO_H_

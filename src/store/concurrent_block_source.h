// Thread-safe disk-backed block reads for the concurrent SP.
//
// StoreBlockSource (block_source.h) is single-threaded by design: its LRU
// returns references whose lifetime ends at the next eviction, which is
// exactly wrong once several query threads share one cache — thread A's hot
// reference dies when thread B faults a cold block in.
//
// ConcurrentStoreBlockSource solves this with a shared, mutex-protected LRU
// of *shared_ptr*-owned decoded blocks plus cheap per-query Handles:
//
//   * the shared cache bounds total decoded blocks across all threads
//     (eviction drops the cache's reference; a block stays alive for any
//     thread still holding it — memory is bounded by capacity + one pinned
//     block per in-flight query);
//   * a Handle implements BlockSource by pinning the shared_ptr of the block
//     it last returned, which is precisely the reference contract the query
//     walk relies on ("valid until the next BlockAt on the same source") —
//     per handle, so handles on different threads never invalidate each
//     other;
//   * a Handle is created with a height limit, freezing the chain view at
//     the moment the query was admitted: a miner appending concurrently
//     never shifts a window mid-walk.
//
// Decoding happens outside the cache lock (BlockStore reads are positional
// pread — many readers share the segment fds), so a cold miss never
// serializes other threads behind disk + decode; two threads racing on the
// same height may decode it twice, and the first insert wins (decoded
// blocks are deterministic, so either copy is correct).
//
// Writer exclusion is the caller's job: BlockStore::Append mutates the
// header/index vectors these reads traverse, so appends must be exclusive
// with in-flight handles (api::Service holds a shared_mutex — queries
// shared, appends exclusive).

#ifndef VCHAIN_STORE_CONCURRENT_BLOCK_SOURCE_H_
#define VCHAIN_STORE_CONCURRENT_BLOCK_SOURCE_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>

#include "common/lru.h"
#include "store/block_source.h"

namespace vchain::store {

template <typename Engine>
class ConcurrentStoreBlockSource {
 public:
  using BlockPtr = std::shared_ptr<const core::Block<Engine>>;
  using CacheStats = LruStats;

  /// `capacity` bounds decoded blocks resident in the shared cache (>= 1).
  ConcurrentStoreBlockSource(const Engine& engine, const BlockStore* store,
                             size_t capacity =
                                 StoreBlockSource<Engine>::kDefaultCacheBlocks)
      : engine_(engine), store_(store), cache_(capacity < 1 ? 1 : capacity) {}

  ConcurrentStoreBlockSource(const ConcurrentStoreBlockSource&) = delete;
  ConcurrentStoreBlockSource& operator=(const ConcurrentStoreBlockSource&) =
      delete;

  /// A per-query BlockSource view over the shared cache. Not itself
  /// thread-safe — each concurrent query takes its own handle (they are two
  /// pointers and a pin; creation is free).
  class Handle final : public BlockSource<Engine> {
   public:
    Handle(const ConcurrentStoreBlockSource* parent, uint64_t height_limit)
        : parent_(parent), height_limit_(height_limit) {}

    uint64_t NumBlocks() const override {
      return std::min(height_limit_, parent_->store_->NumBlocks());
    }

    uint64_t TimestampAt(uint64_t height) const override {
      return parent_->store_->HeaderAt(height).timestamp;
    }

    const core::Block<Engine>& BlockAt(uint64_t height) const override {
      auto block = parent_->Fetch(height);
      if (!block.ok()) {
        // Same contract as StoreBlockSource::BlockAt: the store verified
        // CRCs and the header chain at open, so an unreadable block here
        // means the disk mutated underneath a live SP — fail loudly.
        std::fprintf(stderr,
                     "ConcurrentStoreBlockSource: block %llu unreadable: %s\n",
                     static_cast<unsigned long long>(height),
                     block.status().ToString().c_str());
        std::abort();
      }
      pinned_ = block.TakeValue();
      return *pinned_;
    }

   private:
    const ConcurrentStoreBlockSource* parent_;
    uint64_t height_limit_;
    mutable BlockPtr pinned_;  ///< keeps the last-returned block alive
  };

  /// A handle frozen at `height_limit` blocks (the chain as of query
  /// admission); defaults to "everything the store has".
  Handle MakeHandle(
      uint64_t height_limit = std::numeric_limits<uint64_t>::max()) const {
    return Handle(this, height_limit);
  }

  /// The decoded block at `height`, shared with every thread reading it.
  Result<BlockPtr> Fetch(uint64_t height) const {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const BlockPtr* hit = cache_.Get(height)) return *hit;
    }
    // Cache miss = store read + decode outside the lock; attach it to the
    // walk span of the query ambiently tracing on this thread, if any.
    const trace::AmbientSpan amb = trace::CurrentSpan();
    trace::ScopedSpan read_span(amb.tree, "block_read",
                                amb.parent != 0 ? amb.parent : trace::kRootSpan);
    read_span.Note("height", height);
    auto block = ReadBlockFromStore(engine_, *store_, height);
    if (!block.ok()) return block.status();
    auto decoded = std::make_shared<const core::Block<Engine>>(
        block.TakeValue());
    std::lock_guard<std::mutex> lock(mu_);
    // Put keeps an existing entry (a racing thread decoded it first), so
    // all readers converge on one resident copy either way.
    return *cache_.Put(height, std::move(decoded));
  }

  CacheStats cache_stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.stats();
  }
  size_t cached_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  size_t capacity() const { return cache_.capacity(); }
  const BlockStore* block_store() const { return store_; }

 private:
  const Engine& engine_;
  const BlockStore* store_;
  mutable std::mutex mu_;
  mutable LruMap<uint64_t, BlockPtr> cache_;
};

}  // namespace vchain::store

#endif  // VCHAIN_STORE_CONCURRENT_BLOCK_SOURCE_H_

#include "store/block_store.h"

#include <cstdio>
#include <filesystem>
#include <optional>

#include "common/crc32c.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/serde.h"

namespace vchain::store {

namespace fs = std::filesystem;

namespace {

/// Store-tier instrumentation, registered once process-wide (all stores in
/// a process share the families; the daemon runs one store).
struct StoreMetrics {
  metrics::Histogram* append_seconds;
  metrics::Histogram* fsync_seconds;
  metrics::Histogram* recovery_seconds;
  metrics::Counter* appends_total;
  metrics::Counter* appended_bytes_total;
  metrics::Counter* segment_rolls_total;

  static const StoreMetrics& Get() {
    static const StoreMetrics m = [] {
      metrics::Registry& r = metrics::Registry::Default();
      StoreMetrics out;
      out.append_seconds = r.GetLatencyHistogram(
          "vchain_store_append_seconds",
          "Block append latency, fsync included when sync_every_append");
      out.fsync_seconds = r.GetLatencyHistogram(
          "vchain_store_fsync_seconds",
          "Durable-commit latency (segment fsync + COMMIT watermark)");
      out.recovery_seconds = r.GetLatencyHistogram(
          "vchain_store_recovery_seconds",
          "Open-time recovery: scan, CRC-verify and index all segments");
      out.appends_total =
          r.GetCounter("vchain_store_appends_total", "Block records appended");
      out.appended_bytes_total = r.GetCounter(
          "vchain_store_appended_bytes_total",
          "Record payload bytes appended (header + body, pre-framing)");
      out.segment_rolls_total = r.GetCounter(
          "vchain_store_segment_rolls_total",
          "Segments sealed and rolled over to a fresh file");
      return out;
    }();
    return m;
  }
};

// COMMIT sidecar: magic | segment:u32 | offset:u64 | crc32c(first 16 bytes).
// Records the last fsync point so Open can tell fsync'd-then-damaged data
// (bit rot -> Corruption) from unsynced writeback artifacts (-> recovery).
constexpr uint32_t kCommitMagic = 0x76434D31;  // "vCM1"
constexpr size_t kCommitBytes = 20;

std::string CommitPath(const std::string& dir) {
  return (fs::path(dir) / "COMMIT").string();
}

struct CommitWatermark {
  uint32_t segment = 0;
  uint64_t offset = 0;
};

/// A missing/short/damaged sidecar reads as "no watermark" — the tolerant
/// direction (recovery instead of refusal).
std::optional<CommitWatermark> ReadCommitWatermark(const std::string& dir,
                                                   Env* env) {
  auto exists = env->FileExists(CommitPath(dir));
  if (!exists.ok() || !exists.value()) return std::nullopt;
  auto file = env->OpenFile(CommitPath(dir));
  if (!file.ok()) return std::nullopt;
  uint8_t buf[kCommitBytes];
  auto got = file.value()->Read(0, buf, sizeof(buf));
  if (!got.ok() || got.value() != sizeof(buf)) return std::nullopt;
  ByteReader r(ByteSpan(buf, sizeof(buf)));
  uint32_t magic = 0, crc = 0;
  CommitWatermark wm;
  if (!r.GetU32(&magic).ok() || !r.GetU32(&wm.segment).ok() ||
      !r.GetU64(&wm.offset).ok() || !r.GetU32(&crc).ok()) {
    return std::nullopt;
  }
  if (magic != kCommitMagic || Crc32c(ByteSpan(buf, 16)) != crc) {
    return std::nullopt;
  }
  return wm;
}

}  // namespace

std::string BlockStore::SegmentPath(const std::string& dir, uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06u.log", index);
  return (fs::path(dir) / name).string();
}

Result<std::unique_ptr<BlockStore>> BlockStore::Open(const std::string& dir,
                                                     Options options,
                                                     RecoveryStats* stats) {
  std::unique_ptr<BlockStore> store(new BlockStore(dir, options));
  metrics::ScopedTimer recovery_timer(StoreMetrics::Get().recovery_seconds);
  VCHAIN_RETURN_IF_ERROR(store->env_->CreateDirs(dir));
  VCHAIN_RETURN_IF_ERROR(store->OpenSegments(stats));
  return store;
}

Status BlockStore::OpenSegments(RecoveryStats* stats) {
  // Segments are dense: seg-000000 .. seg-N (they are never deleted). List
  // the directory and verify density — stopping at the first missing index
  // would silently serve a truncated chain when a middle segment is lost,
  // and later rolls would append into the stale higher-numbered files.
  uint32_t max_index = 0;
  size_t seen = 0;
  auto names = env_->ListDir(dir_);
  if (!names.ok()) return names.status();
  for (const std::string& name : names.value()) {
    unsigned index = 0;
    // Exact-match the segment naming scheme; sscanf alone would also accept
    // e.g. "seg-000003.log.bak" and fail the density check below.
    if (std::sscanf(name.c_str(), "seg-%06u.log", &index) == 1 &&
        name == fs::path(SegmentPath(dir_, index)).filename().string()) {
      ++seen;
      if (index > max_index) max_index = index;
    }
  }
  if (seen != 0 && seen != static_cast<size_t>(max_index) + 1) {
    return Status::Corruption("segment files are not dense in " + dir_ +
                              " (a segment is missing)");
  }
  std::vector<std::string> paths;
  for (uint32_t i = 0; i < seen; ++i) {
    paths.push_back(SegmentPath(dir_, i));
  }
  if (stats != nullptr) *stats = RecoveryStats{};

  std::optional<CommitWatermark> watermark = ReadCommitWatermark(dir_, env_);
  for (size_t si = 0; si < paths.size(); ++si) {
    bool last = si + 1 == paths.size();
    SegmentLog::OpenStats seg_stats;
    // Only the final segment may legitimately carry a torn tail. Headers
    // are parsed in the same pass that CRC-verifies each record, so open
    // reads every byte exactly once.
    uint32_t segment_index = static_cast<uint32_t>(si);
    auto visit = [this, segment_index](uint64_t offset,
                                       ByteSpan payload) -> Status {
      if (payload.size() < chain::BlockHeader::kSerializedSize) {
        return Status::Corruption("block record shorter than a header");
      }
      ByteReader r(payload);
      chain::BlockHeader header;
      VCHAIN_RETURN_IF_ERROR(chain::BlockHeader::Deserialize(&r, &header));
      VCHAIN_RETURN_IF_ERROR(CheckContinuity(header));
      headers_.push_back(header);
      index_.push_back(RecordRef{segment_index, offset});
      return Status::OK();
    };
    // Sealed (non-final) segments were fsync'd when rolled, so all their
    // damage is bit rot. In the final segment, only bytes below the COMMIT
    // watermark are known durable; damage past it is an unsynced-crash
    // artifact and recoverable.
    uint64_t strict_below = SegmentLog::kNoWatermark;
    if (last) {
      strict_below =
          (watermark.has_value() && watermark->segment == segment_index)
              ? watermark->offset
              : 0;
    }
    auto seg = SegmentLog::Open(paths[si], /*truncate_torn_tail=*/last,
                                &seg_stats, visit, strict_below, env_);
    if (!seg.ok()) return seg.status();
    if (stats != nullptr) stats->truncated_bytes += seg_stats.truncated_bytes;
    if (seg_stats.truncated_bytes > 0) {
      flight::FlightRecorder::Get().Record("store", "recovery_truncated",
                                           segment_index,
                                           seg_stats.truncated_bytes);
    }
    segments_.push_back(seg.TakeValue());
  }
  // An empty store starts its first segment lazily on the first Append.
  if (stats != nullptr) {
    stats->blocks = headers_.size();
    stats->segments = segments_.size();
  }
  // What survived recovery is on disk (post-crash reads are disk reads, and
  // any truncation was fsync'd); seal it under a fresh watermark so the
  // next open applies strict bit-rot detection to it.
  if (!segments_.empty()) {
    VCHAIN_RETURN_IF_ERROR(segments_.back()->Sync());
    VCHAIN_RETURN_IF_ERROR(WriteCommitWatermark());
  }
  return Status::OK();
}

Status BlockStore::WriteCommitWatermark() {
  ByteWriter w;
  w.PutU32(kCommitMagic);
  w.PutU32(static_cast<uint32_t>(segments_.size()) - 1);
  w.PutU64(segments_.back()->size_bytes());
  w.PutU32(Crc32c(ByteSpan(w.bytes().data(), w.bytes().size())));
  std::string path = CommitPath(dir_);
  bool need_entry_sync = false;
  if (!commit_entry_synced_) {
    auto exists = env_->FileExists(path);
    if (!exists.ok()) return exists.status();
    need_entry_sync = !exists.value();
  }
  auto file = env_->OpenFile(path);
  if (!file.ok()) return file.status();
  VCHAIN_RETURN_IF_ERROR(
      file.value()->Write(0, w.bytes().data(), w.bytes().size()));
  VCHAIN_RETURN_IF_ERROR(file.value()->Sync());
  // Persist the sidecar's directory entry once; losing it is only the
  // tolerant direction (reads as "no watermark") but would downgrade
  // bit-rot detection after the crash.
  if (need_entry_sync) {
    VCHAIN_RETURN_IF_ERROR(env_->SyncDir(dir_));
  }
  commit_entry_synced_ = true;
  return Status::OK();
}

Status BlockStore::CheckContinuity(const chain::BlockHeader& header) const {
  if (header.height != headers_.size()) {
    return Status::Corruption("block record height out of sequence");
  }
  if (headers_.empty()) {
    if (header.prev_hash != chain::Hash32{}) {
      return Status::Corruption("genesis record has a parent hash");
    }
    return Status::OK();
  }
  const chain::BlockHeader& prev = headers_.back();
  if (header.prev_hash != prev.Hash()) {
    return Status::Corruption("broken header hash chain in store");
  }
  if (header.timestamp < prev.timestamp) {
    return Status::Corruption("non-monotonic timestamps in store");
  }
  return Status::OK();
}

Status BlockStore::RollSegment() {
  StoreMetrics::Get().segment_rolls_total->Inc();
  flight::FlightRecorder::Get().Record("store", "segment_roll",
                                       segments_.size(), headers_.size());
  if (!segments_.empty()) {
    // Seal the outgoing segment before any record lands in the next one, so
    // a later crash can only tear the *last* segment; the watermark records
    // the seal for the bit-rot-vs-crash distinction at the next open.
    VCHAIN_RETURN_IF_ERROR(segments_.back()->Sync());
    VCHAIN_RETURN_IF_ERROR(WriteCommitWatermark());
  }
  auto seg = SegmentLog::Open(
      SegmentPath(dir_, static_cast<uint32_t>(segments_.size())),
      /*truncate_torn_tail=*/true, nullptr, nullptr, SegmentLog::kNoWatermark,
      env_);
  if (!seg.ok()) return seg.status();
  // Persist the new file's directory entry before any record relies on it;
  // otherwise a crash could drop the whole segment while its blocks'
  // appends (and fsyncs) reported success.
  VCHAIN_RETURN_IF_ERROR(env_->SyncDir(dir_));
  segments_.push_back(seg.TakeValue());
  return Status::OK();
}

Status BlockStore::Append(const chain::BlockHeader& header, ByteSpan body) {
  metrics::ScopedTimer timer(StoreMetrics::Get().append_seconds);
  if (broken_) {
    return Status::Internal(
        "block store is in a failed state after an append error; reopen it");
  }
  VCHAIN_RETURN_IF_ERROR(CheckContinuity(header));
  if (segments_.empty() ||
      segments_.back()->size_bytes() >= options_.segment_target_bytes) {
    // Safe to retry on failure: nothing was recorded yet.
    VCHAIN_RETURN_IF_ERROR(RollSegment());
  }
  ByteWriter w;
  header.Serialize(&w);
  w.PutFixed(body);
  auto offset =
      segments_.back()->Append(ByteSpan(w.bytes().data(), w.bytes().size()));
  if (!offset.ok()) {
    // The segment log's positional writes make a retry overwrite the torn
    // frame in place, but the durability state is now ambiguous; refuse
    // further appends rather than risk a duplicate-height record that would
    // make the store unopenable.
    broken_ = true;
    flight::FlightRecorder::Get().Record("store", "append_refused",
                                         header.height);
    return offset.status();
  }
  if (options_.sync_every_append) {
    Status st = Sync();
    if (!st.ok()) {
      broken_ = true;  // record is framed on disk but not durably indexed
      return st;
    }
  }
  headers_.push_back(header);
  index_.push_back(RecordRef{static_cast<uint32_t>(segments_.size()) - 1,
                             offset.value()});
  StoreMetrics::Get().appends_total->Inc();
  StoreMetrics::Get().appended_bytes_total->Inc(w.bytes().size());
  return Status::OK();
}

Result<Bytes> BlockStore::ReadRecord(uint64_t height) const {
  if (height >= index_.size()) {
    return Status::NotFound("height beyond store tip");
  }
  const RecordRef& ref = index_[height];
  auto payload = segments_[ref.segment]->ReadAt(ref.offset);
  if (!payload.ok()) return payload.status();
  if (payload.value().size() < chain::BlockHeader::kSerializedSize) {
    return Status::Corruption("block record shorter than a header");
  }
  return payload;
}

Status BlockStore::Sync() {
  if (segments_.empty()) return Status::OK();
  metrics::ScopedTimer timer(StoreMetrics::Get().fsync_seconds);
  VCHAIN_RETURN_IF_ERROR(segments_.back()->Sync());
  VCHAIN_RETURN_IF_ERROR(WriteCommitWatermark());
  flight::FlightRecorder::Get().Record("store", "commit",
                                       segments_.size() - 1,
                                       segments_.back()->size_bytes(),
                                       headers_.size());
  return Status::OK();
}

}  // namespace vchain::store

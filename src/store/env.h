// Env — the storage layer's only door to the operating system.
//
// Every byte src/store/ reads or writes (segment records, the COMMIT
// sidecar, directory entries) flows through one of these virtual calls, so
// the whole durability story can be tested against an *injected* operating
// system instead of the real one. Two implementations:
//
//   * Env::Default() — the production posix env: positional pread/pwrite
//     (EINTR-retrying, via store/posix_io.h), fsync, ftruncate, and
//     directory-entry fsync. Stateless; one shared instance.
//
//   * FaultInjectionEnv — wraps any base env and makes the failure modes a
//     real disk exhibits reproducible on demand:
//       - fail the nth write with ENOSPC/EIO, optionally leaving a torn
//         prefix of the frame on disk (a short write);
//       - fail the nth fsync (content or directory);
//       - PowerCut(seed): emulate a power loss with *unordered* writeback —
//         every write since the file's last successful fsync is
//         independently kept, dropped (its preimage restored), or kept as a
//         torn prefix, and files whose directory entry was never fsync'd
//         vanish entirely.
//     tests/store/crash_loop_test.cc drives hundreds of append/kill/reopen
//     cycles through this env and requires recovery to a clean durable
//     prefix every time.
//
// The seam is deliberately narrow — open/read/write/sync/truncate/size plus
// four directory ops — because that is the storage layer's entire syscall
// surface. Higher layers (net/, api/) never see an Env; they observe
// storage faults only as Status values (and api::Service reacts by entering
// read-only degraded mode).

#ifndef VCHAIN_STORE_ENV_H_
#define VCHAIN_STORE_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace vchain::store {

class Env {
 public:
  /// A read-write file addressed positionally (no cursor — failed or
  /// partial operations are always retryable at the same offset).
  class File {
   public:
    virtual ~File() = default;
    /// pread up to `n` bytes; short only at EOF.
    virtual Result<size_t> Read(uint64_t offset, uint8_t* buf, size_t n) = 0;
    /// pwrite exactly `n` bytes at `offset` (or fail).
    virtual Status Write(uint64_t offset, const uint8_t* buf, size_t n) = 0;
    virtual Status Sync() = 0;
    virtual Status Truncate(uint64_t size) = 0;
    virtual Result<uint64_t> Size() = 0;
    virtual const std::string& path() const = 0;
  };

  virtual ~Env() = default;

  /// Open `path` read-write, creating it when absent.
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path) = 0;
  virtual Result<bool> FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& dir) = 0;
  /// Filenames (not paths) of the directory's entries.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  /// fsync the directory itself, making created entries durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// The shared production posix env.
  static Env* Default();
};

/// Deterministic fault injector over a base env (see file comment).
/// Thread-compatible: the storage layer serializes writes, and tests drive
/// PowerCut/ScheduleFault only between store open/close.
class FaultInjectionEnv : public Env {
 public:
  struct Fault {
    enum class Op { kNone, kWrite, kSync };
    Op op = Op::kNone;
    /// 1-based index of the matching operation that fails (counted from
    /// ScheduleFault; writes and syncs counted separately).
    uint64_t at = 0;
    int err = 5;  // EIO
    /// Leave a torn prefix of the frame on disk before failing.
    bool short_write = false;
  };

  explicit FaultInjectionEnv(Env* base = Env::Default()) : base_(base) {}

  Result<std::unique_ptr<File>> OpenFile(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status DeleteFile(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override {
    return base_->CreateDirs(dir);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status SyncDir(const std::string& dir) override;

  /// Arm one fault; resets the operation counters. Only one fault is armed
  /// at a time (the crash loop re-arms per cycle).
  void ScheduleFault(Fault fault);
  void ClearFault() { ScheduleFault(Fault{}); }

  /// Operations observed since construction (not reset by ScheduleFault).
  uint64_t total_writes() const;
  uint64_t total_syncs() const;

  /// Emulate a power loss across every tracked file: each un-fsync'd write
  /// is independently kept, dropped, or torn to a prefix (driven by
  /// `seed`); files whose directory entry was never SyncDir'd are deleted.
  /// Call with no live File handles (i.e., after the store is destroyed).
  Status PowerCut(uint64_t seed);

  /// Forget all tracking (treat current on-disk state as durable).
  void Reset();

 private:
  friend class FaultInjectionFile;

  struct WriteRecord {
    uint64_t offset = 0;
    Bytes data;      ///< bytes written (re-applied for kept writes)
    Bytes preimage;  ///< prior content of [offset, offset+data.size())
    uint64_t old_size = 0;  ///< file size before the op
    bool is_truncate = false;  ///< data empty; preimage = truncated tail
  };

  struct FileState {
    std::vector<WriteRecord> unsynced;
    /// Created through this env and the parent dir not yet fsync'd — a
    /// power cut may drop the whole file.
    bool entry_pending = false;
  };

  /// nullptr = no fault this op.
  const Fault* MaybeWriteFault();
  const Fault* MaybeSyncFault();

  Env* base_;
  mutable std::mutex mu_;
  Fault fault_;
  uint64_t fault_writes_seen_ = 0;
  uint64_t fault_syncs_seen_ = 0;
  uint64_t total_writes_ = 0;
  uint64_t total_syncs_ = 0;
  std::map<std::string, FileState> files_;
};

}  // namespace vchain::store

namespace vchain {
// The seam is storage infrastructure but the name is library-wide: a
// ServiceOptions carries one via store_options.env.
using store::Env;
using store::FaultInjectionEnv;
}  // namespace vchain

#endif  // VCHAIN_STORE_ENV_H_

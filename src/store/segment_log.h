// Append-only segment file of checksummed records — the durability primitive
// under BlockStore.
//
// On-disk layout (all integers little-endian, matching common/serde.h):
//
//   segment  := file_header record*
//   file_header := magic:u32 version:u32
//   record   := payload_len:u32 crc:u32 payload_bytes
//   crc      := crc32c(payload_len_bytes | payload_bytes)
//
// The CRC covers the length field (LevelDB-style), so a bit-rotted length
// that still frames plausibly is detected as corruption rather than
// re-framing the rest of the file.
//
// Appends go through a single file descriptor; `Sync()` fsyncs, and the
// caller chooses the commit policy (every record, or batched). Reads are
// positional (`pread`), so a reader never disturbs the append cursor and
// many readers can share one open segment.
//
// Crash safety: a torn write can only damage the *tail* (records are written
// back-to-back and the kernel persists prefixes of a write stream under
// fsync ordering). `Open` therefore scans the file, keeps the longest clean
// prefix of records, and — when `truncate_torn_tail` is set — truncates
// anything after it: a torn file header of a freshly rolled segment, a short
// length field, a payload cut mid-way, or a CRC mismatch in the final
// record. A CRC mismatch *before* the last record is not a crash artifact
// but bit rot, and is reported as Corruption instead of being silently
// dropped. Residual ambiguity: damage to a length field that *overruns* the
// remaining file is indistinguishable from an unsynced torn batch, so the
// clean prefix wins and `OpenStats::truncated_bytes` reports what was
// dropped — deployments that cannot tolerate that window run with
// `BlockStore::Options::sync_every_append` (loss bounded to one record) or
// replicate segments externally.

#ifndef VCHAIN_STORE_SEGMENT_LOG_H_
#define VCHAIN_STORE_SEGMENT_LOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "store/env.h"

namespace vchain::store {

class SegmentLog {
 public:
  static constexpr uint32_t kMagic = 0x76434C31;  // "vCL1"
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kFileHeaderBytes = 8;
  static constexpr size_t kRecordHeaderBytes = 8;  // len + crc
  /// Per-record payload cap; a hostile or garbage length field can never
  /// force an allocation beyond this.
  static constexpr uint32_t kMaxPayloadBytes = 1u << 28;  // 256 MiB

  struct OpenStats {
    size_t records = 0;
    uint64_t truncated_bytes = 0;  ///< torn tail dropped during recovery
  };

  /// Called once per clean record during the `Open` scan, in file order —
  /// lets the owner consume payloads in the same pass that CRC-verifies
  /// them instead of re-reading the file afterwards. A non-OK return aborts
  /// the open with that status.
  using RecordVisitor = std::function<Status(uint64_t offset, ByteSpan payload)>;

  /// Every record below this offset is known fsync'd (see `Open`).
  static constexpr uint64_t kNoWatermark = ~uint64_t{0};

  /// Open `path`, creating it (with a fresh file header) when absent.
  /// Scans existing records, verifying framing and CRCs; leaves the log
  /// positioned for appends after the last clean record.
  ///
  /// `strict_below` is the caller's durability watermark: a CRC-damaged
  /// record *below* it was fsync'd, so the damage is bit rot and the open
  /// fails with Corruption; at or above it (or reaching EOF), the damage is
  /// indistinguishable from unsynced-crash writeback — which the kernel may
  /// reorder across pages — so recovery keeps the clean prefix and
  /// truncates. Pass kNoWatermark to treat all non-tail damage as bit rot
  /// (the right call for segments sealed by an fsync), 0 to treat all
  /// damage as recoverable — with `strict_below == 0` even a damaged *file
  /// header* recovers (the whole file is an unsynced-writeback artifact).
  ///
  /// All I/O goes through `env` (nullptr -> Env::Default()).
  static Result<std::unique_ptr<SegmentLog>> Open(
      const std::string& path, bool truncate_torn_tail,
      OpenStats* stats = nullptr, const RecordVisitor& visitor = nullptr,
      uint64_t strict_below = kNoWatermark, Env* env = nullptr);

  ~SegmentLog() = default;
  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  /// Append one record; returns the record's file offset (stable id for
  /// `ReadAt`). Durable only after the next `Sync()`.
  Result<uint64_t> Append(ByteSpan payload);

  /// Read and CRC-check the record starting at `offset`.
  Result<Bytes> ReadAt(uint64_t offset) const;

  /// fsync the segment.
  Status Sync();

  /// File offsets of every live record, in append order.
  const std::vector<uint64_t>& record_offsets() const { return offsets_; }
  size_t num_records() const { return offsets_.size(); }
  /// Next append position == current logical file size.
  uint64_t size_bytes() const { return end_offset_; }
  const std::string& path() const { return file_->path(); }

 private:
  explicit SegmentLog(std::unique_ptr<Env::File> file)
      : file_(std::move(file)) {}

  Status ScanExisting(bool truncate_torn_tail, OpenStats* stats,
                      const RecordVisitor& visitor, uint64_t strict_below);
  /// Truncate to empty and write a fresh file header.
  Status InitFresh();

  std::unique_ptr<Env::File> file_;
  uint64_t end_offset_ = kFileHeaderBytes;
  std::vector<uint64_t> offsets_;
};

}  // namespace vchain::store

#endif  // VCHAIN_STORE_SEGMENT_LOG_H_

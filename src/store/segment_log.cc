#include "store/segment_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.h"
#include "common/serde.h"
#include "store/posix_io.h"

namespace vchain::store {
namespace {

uint32_t DecodeU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void EncodeU32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

/// The record checksum covers the length field too, so a bit-rotted length
/// cannot silently re-frame the file.
uint32_t RecordCrc(const uint8_t len_bytes[4], ByteSpan payload) {
  return Crc32c(payload, Crc32c(ByteSpan(len_bytes, 4)));
}

}  // namespace

Result<std::unique_ptr<SegmentLog>> SegmentLog::Open(const std::string& path,
                                                     bool truncate_torn_tail,
                                                     OpenStats* stats,
                                                     const RecordVisitor& visitor,
                                                     uint64_t strict_below) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open", path);
  std::unique_ptr<SegmentLog> log(new SegmentLog(path, fd));
  if (stats != nullptr) *stats = OpenStats{};

  off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) return IoError("lseek", path);
  if (file_size > 0 &&
      static_cast<uint64_t>(file_size) < kFileHeaderBytes) {
    // A crash during the 8-byte file-header write of a freshly created
    // segment leaves a prefix of the (deterministic) header bytes — recover
    // it as an empty segment rather than refusing to open the store.
    if (!truncate_torn_tail) {
      return Status::Corruption("torn file header in non-final segment: " +
                                path);
    }
    if (::ftruncate(fd, 0) != 0) return IoError("ftruncate", path);
    if (stats != nullptr) {
      stats->truncated_bytes = static_cast<uint64_t>(file_size);
    }
    file_size = 0;
  }
  if (file_size == 0) {
    // Fresh segment: write the file header.
    uint8_t hdr[kFileHeaderBytes];
    EncodeU32(kMagic, hdr);
    EncodeU32(kVersion, hdr + 4);
    VCHAIN_RETURN_IF_ERROR(PWriteFull(fd, 0, hdr, sizeof(hdr), path));
    log->end_offset_ = kFileHeaderBytes;
    return log;
  }
  VCHAIN_RETURN_IF_ERROR(
      log->ScanExisting(truncate_torn_tail, stats, visitor, strict_below));
  return log;
}

Status SegmentLog::ScanExisting(bool truncate_torn_tail, OpenStats* stats,
                                const RecordVisitor& visitor,
                                uint64_t strict_below) {
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 0) return IoError("lseek", path_);
  uint64_t size = static_cast<uint64_t>(file_size);

  uint8_t hdr[kFileHeaderBytes];
  auto got = PReadFull(fd_, 0, hdr, sizeof(hdr), path_);
  if (!got.ok()) return got.status();
  if (DecodeU32(hdr) != kMagic) {
    return Status::Corruption("bad segment magic: " + path_);
  }
  if (DecodeU32(hdr + 4) != kVersion) {
    return Status::Corruption("unsupported segment version: " + path_);
  }

  uint64_t pos = kFileHeaderBytes;
  Bytes payload;
  // Damage classification. With a real watermark (strict_below !=
  // kNoWatermark, always a record boundary): any scan break at pos <
  // strict_below means fsync'd data is damaged or missing — bit rot or a
  // shrunken file, never a torn write — and must be Corruption even when
  // the damaged record is the last one. At or past the watermark the bytes
  // were never fsync'd, so damage of any kind (including mid-file CRC
  // mismatches — unsynced page writeback is not ordered) recovers by
  // truncation. Without a watermark, fall back to shape-based judgement:
  // framing damage and a CRC-bad record reaching EOF read as a torn tail;
  // a CRC-bad record with clean bytes after it reads as bit rot.
  bool crc_damage_before_eof = false;
  while (pos < size) {
    uint8_t rec_hdr[kRecordHeaderBytes];
    if (size - pos < kRecordHeaderBytes) break;  // torn length field
    auto hr = PReadFull(fd_, pos, rec_hdr, sizeof(rec_hdr), path_);
    if (!hr.ok()) return hr.status();
    uint32_t len = DecodeU32(rec_hdr);
    uint32_t crc = DecodeU32(rec_hdr + 4);
    if (len > kMaxPayloadBytes) break;  // garbage length: unframed tail
    if (size - pos - kRecordHeaderBytes < len) break;  // payload cut short
    payload.resize(len);
    auto pr = PReadFull(fd_, pos + kRecordHeaderBytes, payload.data(), len,
                        path_);
    if (!pr.ok()) return pr.status();
    if (RecordCrc(rec_hdr, ByteSpan(payload.data(), payload.size())) != crc) {
      crc_damage_before_eof = pos + kRecordHeaderBytes + len < size;
      break;
    }
    if (visitor) {
      VCHAIN_RETURN_IF_ERROR(
          visitor(pos, ByteSpan(payload.data(), payload.size())));
    }
    offsets_.push_back(pos);
    pos += kRecordHeaderBytes + len;
  }
  if (pos < size) {
    bool durable_damage = strict_below == kNoWatermark
                              ? crc_damage_before_eof
                              : pos < strict_below;
    if (durable_damage) {
      return Status::Corruption(
          "damaged record in fsync'd data (bit rot) in " + path_);
    }
  }

  uint64_t torn = size - pos;
  if (torn > 0) {
    if (!truncate_torn_tail) {
      return Status::Corruption("torn tail in non-final segment: " + path_);
    }
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      return IoError("ftruncate", path_);
    }
    if (::fsync(fd_) != 0) return IoError("fsync", path_);
  }
  end_offset_ = pos;
  if (stats != nullptr) {
    stats->records = offsets_.size();
    stats->truncated_bytes = torn;
  }
  return Status::OK();
}

SegmentLog::~SegmentLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> SegmentLog::Append(ByteSpan payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("record payload too large");
  }
  Bytes frame(kRecordHeaderBytes + payload.size());
  EncodeU32(static_cast<uint32_t>(payload.size()), frame.data());
  EncodeU32(RecordCrc(frame.data(), payload), frame.data() + 4);
  std::memcpy(frame.data() + kRecordHeaderBytes, payload.data(),
              payload.size());
  VCHAIN_RETURN_IF_ERROR(
      PWriteFull(fd_, end_offset_, frame.data(), frame.size(), path_));
  uint64_t offset = end_offset_;
  offsets_.push_back(offset);
  end_offset_ += frame.size();
  return offset;
}

Result<Bytes> SegmentLog::ReadAt(uint64_t offset) const {
  uint8_t rec_hdr[kRecordHeaderBytes];
  auto hr = PReadFull(fd_, offset, rec_hdr, sizeof(rec_hdr), path_);
  if (!hr.ok()) return hr.status();
  if (hr.value() != kRecordHeaderBytes) {
    return Status::Corruption("record header past end of segment");
  }
  uint32_t len = DecodeU32(rec_hdr);
  uint32_t crc = DecodeU32(rec_hdr + 4);
  if (len > kMaxPayloadBytes) {
    return Status::Corruption("record length field too large");
  }
  Bytes payload(len);
  auto pr = PReadFull(fd_, offset + kRecordHeaderBytes, payload.data(), len,
                      path_);
  if (!pr.ok()) return pr.status();
  if (pr.value() != len) {
    return Status::Corruption("record payload past end of segment");
  }
  if (RecordCrc(rec_hdr, ByteSpan(payload.data(), payload.size())) != crc) {
    return Status::Corruption("record CRC mismatch");
  }
  return payload;
}

Status SegmentLog::Sync() {
  if (::fsync(fd_) != 0) return IoError("fsync", path_);
  return Status::OK();
}

}  // namespace vchain::store

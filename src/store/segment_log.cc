#include "store/segment_log.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/serde.h"

namespace vchain::store {
namespace {

uint32_t DecodeU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void EncodeU32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

/// The record checksum covers the length field too, so a bit-rotted length
/// cannot silently re-frame the file.
uint32_t RecordCrc(const uint8_t len_bytes[4], ByteSpan payload) {
  return Crc32c(payload, Crc32c(ByteSpan(len_bytes, 4)));
}

}  // namespace

Status SegmentLog::InitFresh() {
  VCHAIN_RETURN_IF_ERROR(file_->Truncate(0));
  uint8_t hdr[kFileHeaderBytes];
  EncodeU32(kMagic, hdr);
  EncodeU32(kVersion, hdr + 4);
  VCHAIN_RETURN_IF_ERROR(file_->Write(0, hdr, sizeof(hdr)));
  end_offset_ = kFileHeaderBytes;
  offsets_.clear();
  return Status::OK();
}

Result<std::unique_ptr<SegmentLog>> SegmentLog::Open(const std::string& path,
                                                     bool truncate_torn_tail,
                                                     OpenStats* stats,
                                                     const RecordVisitor& visitor,
                                                     uint64_t strict_below,
                                                     Env* env) {
  if (env == nullptr) env = Env::Default();
  auto file = env->OpenFile(path);
  if (!file.ok()) return file.status();
  std::unique_ptr<SegmentLog> log(new SegmentLog(file.TakeValue()));
  if (stats != nullptr) *stats = OpenStats{};

  auto size = log->file_->Size();
  if (!size.ok()) return size.status();
  uint64_t file_size = size.value();
  if (file_size > 0 && file_size < kFileHeaderBytes) {
    // A crash during the 8-byte file-header write of a freshly created
    // segment leaves a prefix of the (deterministic) header bytes — recover
    // it as an empty segment rather than refusing to open the store.
    if (!truncate_torn_tail) {
      return Status::Corruption("torn file header in non-final segment: " +
                                path);
    }
    VCHAIN_RETURN_IF_ERROR(log->file_->Truncate(0));
    if (stats != nullptr) stats->truncated_bytes = file_size;
    file_size = 0;
  }
  if (file_size == 0) {
    // Fresh segment: write the file header.
    VCHAIN_RETURN_IF_ERROR(log->InitFresh());
    return log;
  }
  VCHAIN_RETURN_IF_ERROR(
      log->ScanExisting(truncate_torn_tail, stats, visitor, strict_below));
  return log;
}

Status SegmentLog::ScanExisting(bool truncate_torn_tail, OpenStats* stats,
                                const RecordVisitor& visitor,
                                uint64_t strict_below) {
  auto size_r = file_->Size();
  if (!size_r.ok()) return size_r.status();
  uint64_t size = size_r.value();

  uint8_t hdr[kFileHeaderBytes];
  auto got = file_->Read(0, hdr, sizeof(hdr));
  if (!got.ok()) return got.status();
  if (DecodeU32(hdr) != kMagic || DecodeU32(hdr + 4) != kVersion) {
    // With a watermark that says *no* byte of this file was ever fsync'd,
    // garbage where the header should be is an unordered-writeback artifact
    // (e.g. the header's page was dropped while a later record's page
    // survived), not bit rot — recover the file as an empty segment.
    if (truncate_torn_tail && strict_below == 0) {
      VCHAIN_RETURN_IF_ERROR(InitFresh());
      if (stats != nullptr) {
        stats->records = 0;
        stats->truncated_bytes = size;
      }
      return Status::OK();
    }
    if (DecodeU32(hdr) != kMagic) {
      return Status::Corruption("bad segment magic: " + path());
    }
    return Status::Corruption("unsupported segment version: " + path());
  }

  uint64_t pos = kFileHeaderBytes;
  Bytes payload;
  // Damage classification. With a real watermark (strict_below !=
  // kNoWatermark, always a record boundary): any scan break at pos <
  // strict_below means fsync'd data is damaged or missing — bit rot or a
  // shrunken file, never a torn write — and must be Corruption even when
  // the damaged record is the last one. At or past the watermark the bytes
  // were never fsync'd, so damage of any kind (including mid-file CRC
  // mismatches — unsynced page writeback is not ordered) recovers by
  // truncation. Without a watermark, fall back to shape-based judgement:
  // framing damage and a CRC-bad record reaching EOF read as a torn tail;
  // a CRC-bad record with clean bytes after it reads as bit rot.
  bool crc_damage_before_eof = false;
  while (pos < size) {
    uint8_t rec_hdr[kRecordHeaderBytes];
    if (size - pos < kRecordHeaderBytes) break;  // torn length field
    auto hr = file_->Read(pos, rec_hdr, sizeof(rec_hdr));
    if (!hr.ok()) return hr.status();
    uint32_t len = DecodeU32(rec_hdr);
    uint32_t crc = DecodeU32(rec_hdr + 4);
    if (len > kMaxPayloadBytes) break;  // garbage length: unframed tail
    if (size - pos - kRecordHeaderBytes < len) break;  // payload cut short
    payload.resize(len);
    auto pr = file_->Read(pos + kRecordHeaderBytes, payload.data(), len);
    if (!pr.ok()) return pr.status();
    if (RecordCrc(rec_hdr, ByteSpan(payload.data(), payload.size())) != crc) {
      crc_damage_before_eof = pos + kRecordHeaderBytes + len < size;
      break;
    }
    if (visitor) {
      VCHAIN_RETURN_IF_ERROR(
          visitor(pos, ByteSpan(payload.data(), payload.size())));
    }
    offsets_.push_back(pos);
    pos += kRecordHeaderBytes + len;
  }
  if (pos < size) {
    bool durable_damage = strict_below == kNoWatermark
                              ? crc_damage_before_eof
                              : pos < strict_below;
    if (durable_damage) {
      return Status::Corruption(
          "damaged record in fsync'd data (bit rot) in " + path());
    }
  }

  uint64_t torn = size - pos;
  if (torn > 0) {
    if (!truncate_torn_tail) {
      return Status::Corruption("torn tail in non-final segment: " + path());
    }
    VCHAIN_RETURN_IF_ERROR(file_->Truncate(pos));
    VCHAIN_RETURN_IF_ERROR(file_->Sync());
  }
  end_offset_ = pos;
  if (stats != nullptr) {
    stats->records = offsets_.size();
    stats->truncated_bytes = torn;
  }
  return Status::OK();
}

Result<uint64_t> SegmentLog::Append(ByteSpan payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("record payload too large");
  }
  Bytes frame(kRecordHeaderBytes + payload.size());
  EncodeU32(static_cast<uint32_t>(payload.size()), frame.data());
  EncodeU32(RecordCrc(frame.data(), payload), frame.data() + 4);
  std::memcpy(frame.data() + kRecordHeaderBytes, payload.data(),
              payload.size());
  VCHAIN_RETURN_IF_ERROR(file_->Write(end_offset_, frame.data(), frame.size()));
  uint64_t offset = end_offset_;
  offsets_.push_back(offset);
  end_offset_ += frame.size();
  return offset;
}

Result<Bytes> SegmentLog::ReadAt(uint64_t offset) const {
  uint8_t rec_hdr[kRecordHeaderBytes];
  auto hr = file_->Read(offset, rec_hdr, sizeof(rec_hdr));
  if (!hr.ok()) return hr.status();
  if (hr.value() != kRecordHeaderBytes) {
    return Status::Corruption("record header past end of segment");
  }
  uint32_t len = DecodeU32(rec_hdr);
  uint32_t crc = DecodeU32(rec_hdr + 4);
  if (len > kMaxPayloadBytes) {
    return Status::Corruption("record length field too large");
  }
  Bytes payload(len);
  auto pr = file_->Read(offset + kRecordHeaderBytes, payload.data(), len);
  if (!pr.ok()) return pr.status();
  if (pr.value() != len) {
    return Status::Corruption("record payload past end of segment");
  }
  if (RecordCrc(rec_hdr, ByteSpan(payload.data(), payload.size())) != crc) {
    return Status::Corruption("record CRC mismatch");
  }
  return payload;
}

Status SegmentLog::Sync() { return file_->Sync(); }

}  // namespace vchain::store

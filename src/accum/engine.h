// The accumulator-engine concept and engine-generic helpers.
//
// Everything above this layer (chain ADS construction, query processing,
// verification, subscriptions) is templated on an `Engine` satisfying:
//
//   types   ObjectDigest, QueryDigest, Proof        (regular, ==, serde)
//   uint64_t       MapElement(Element) const
//   ObjectDigest   Digest(const Multiset&) const
//   QueryDigest    QueryDigestOf(const Multiset&) const
//   Result<Proof>  ProveDisjoint(const Multiset& w, const Multiset& clause)
//   bool           VerifyDisjoint(ObjectDigest, QueryDigest, Proof) const
//   serde: SerializeDigest/DeserializeDigest/SerializeProof/DeserializeProof
//   static constexpr bool kSupportsAggregation
//   (if aggregation) SumDigests(vector<ObjectDigest>), SumProofs(vector<Proof>)
//
// Concrete models: Acc1Engine, Acc2Engine (BN254), MockAcc1Engine,
// MockAcc2Engine (transparent test doubles).
//
// Matching semantics: the protocol compares elements under the engine's
// universe mapping (`MapElement`), so a mismatch decision made by the SP is
// always provable and verifiable (see element.h).

#ifndef VCHAIN_ACCUM_ENGINE_H_
#define VCHAIN_ACCUM_ENGINE_H_

#include <concepts>
#include <unordered_set>
#include <vector>

#include "accum/multiset.h"

namespace vchain::accum {

template <typename E>
concept AccumulatorEngine = requires(const E e, const Multiset& m,
                                     typename E::ObjectDigest od,
                                     typename E::QueryDigest qd,
                                     typename E::Proof pf, ByteWriter* w,
                                     ByteReader* r) {
  { e.MapElement(Element{}) } -> std::convertible_to<uint64_t>;
  { e.Digest(m) } -> std::same_as<typename E::ObjectDigest>;
  { e.QueryDigestOf(m) } -> std::same_as<typename E::QueryDigest>;
  { e.ProveDisjoint(m, m) } -> std::same_as<Result<typename E::Proof>>;
  { e.VerifyDisjoint(od, qd, pf) } -> std::same_as<bool>;
  { E::kSupportsAggregation } -> std::convertible_to<bool>;
  e.SerializeDigest(od, w);
  e.SerializeProof(pf, w);
};

/// True iff `w` and `clause` share an element under the engine's mapping.
/// This — not raw intersection — is the protocol's match relation.
template <typename Engine>
bool MappedIntersects(const Engine& engine, const Multiset& w,
                      const Multiset& clause) {
  std::unordered_set<uint64_t> mapped;
  mapped.reserve(clause.DistinctSize());
  for (const Multiset::Entry& e : clause.entries()) {
    mapped.insert(engine.MapElement(e.element));
  }
  for (const Multiset::Entry& e : w.entries()) {
    if (mapped.count(engine.MapElement(e.element))) return true;
  }
  return false;
}

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_ENGINE_H_

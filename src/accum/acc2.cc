#include "accum/acc2.h"

namespace vchain::accum {

Multiset Acc2Engine::MapMultiset(const Multiset& w) const {
  Multiset mapped;
  for (const Multiset::Entry& e : w.entries()) {
    mapped.Add(MapElement(e.element), e.count);
  }
  return mapped;
}

Acc2Engine::ObjectDigest Acc2Engine::Digest(const Multiset& w) const {
  Multiset mapped = MapMultiset(w);
  if (mapped.Empty()) return ObjectDigest{G1::Infinity().ToAffine()};
  if (mode_ == ProverMode::kTrustedFast) {
    Fr a = Fr::Zero();
    for (const Multiset::Entry& e : mapped.entries()) {
      a += Fr::FromUint64(e.count) * oracle_->SecretPow(e.element);
    }
    return ObjectDigest{oracle_->CommitG1(a).ToAffine()};
  }
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  bases.reserve(mapped.DistinctSize());
  for (const Multiset::Entry& e : mapped.entries()) {
    bases.push_back(oracle_->G1PowerOf(e.element));
    scalars.push_back(U256(e.count));
  }
  return ObjectDigest{crypto::MultiScalarMul(bases, scalars, pool_).ToAffine()};
}

Acc2Engine::QueryDigest Acc2Engine::QueryDigestOf(const Multiset& clause) const {
  Multiset mapped = MapMultiset(clause);
  if (mapped.Empty()) return QueryDigest{G2::Infinity().ToAffine()};
  uint64_t q = oracle_->params().UniverseSize();
  std::vector<G2Affine> bases;
  std::vector<U256> scalars;
  for (const Multiset::Entry& e : mapped.entries()) {
    bases.push_back(oracle_->G2PowerOf(q - e.element));
    scalars.push_back(U256(e.count));
  }
  return QueryDigest{crypto::MultiScalarMul(bases, scalars, pool_).ToAffine()};
}

Result<Acc2Engine::Proof> Acc2Engine::ProveDisjoint(
    const Multiset& w, const Multiset& clause) const {
  Multiset mw = MapMultiset(w);
  Multiset mc = MapMultiset(clause);
  if (mw.Intersects(mc)) {
    return Status::InvalidArgument("mapped multisets intersect");
  }
  uint64_t q = oracle_->params().UniverseSize();
  if (mw.Empty() || mc.Empty()) {
    // A(X)*B(Y) == 0: the proof is the identity element.
    return Proof{G1::Infinity().ToAffine()};
  }
  if (mode_ == ProverMode::kTrustedFast) {
    Fr a = Fr::Zero();
    for (const Multiset::Entry& e : mw.entries()) {
      a += Fr::FromUint64(e.count) * oracle_->SecretPow(e.element);
    }
    Fr b = Fr::Zero();
    for (const Multiset::Entry& e : mc.entries()) {
      b += Fr::FromUint64(e.count) * oracle_->SecretPow(q - e.element);
    }
    return Proof{oracle_->CommitG1(a * b).ToAffine()};
  }
  // Honest path: pi = prod over cross terms of g1^{s^{x_i + q - y_j}} with
  // weight m_i * m_j. Disjointness guarantees x_i + q - y_j != q. Cross-term
  // powers are served uncached (they rarely recur; see keys.h).
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  bases.reserve(mw.DistinctSize() * mc.DistinctSize());
  for (const Multiset::Entry& ew : mw.entries()) {
    for (const Multiset::Entry& ec : mc.entries()) {
      uint64_t idx = ew.element + q - ec.element;
      bases.push_back(oracle_->G1PowerOfUncached(idx));
      scalars.push_back(
          U256(static_cast<uint64_t>(ew.count) * ec.count));
    }
  }
  return Proof{crypto::MultiScalarMul(bases, scalars, pool_).ToAffine()};
}

bool Acc2Engine::VerifyDisjoint(const ObjectDigest& dw, const QueryDigest& dc,
                                const Proof& proof) const {
  // e(dA, dB) * e(-pi, g2) == 1.
  G1Affine neg_pi = G1::FromAffine(proof.pi).Neg().ToAffine();
  return crypto::PairingProductIsOne(
      {{dw.point, dc.point}, {neg_pi, crypto::G2Generator()}});
}

Acc2Engine::ObjectDigest Acc2Engine::SumDigests(
    const std::vector<ObjectDigest>& digests) const {
  G1 acc = G1::Infinity();
  for (const ObjectDigest& d : digests) {
    acc = acc.AddAffine(d.point);
  }
  return ObjectDigest{acc.ToAffine()};
}

Acc2Engine::Proof Acc2Engine::SumProofs(const std::vector<Proof>& proofs) const {
  G1 acc = G1::Infinity();
  for (const Proof& p : proofs) {
    acc = acc.AddAffine(p.pi);
  }
  return Proof{acc.ToAffine()};
}

void Acc2Engine::SerializeDigest(const ObjectDigest& d, ByteWriter* w) const {
  crypto::SerializeG1(d.point, w);
}

Status Acc2Engine::DeserializeDigest(ByteReader* r, ObjectDigest* out) const {
  return crypto::DeserializeG1(r, &out->point);
}

void Acc2Engine::SerializeProof(const Proof& p, ByteWriter* w) const {
  crypto::SerializeG1(p.pi, w);
}

Status Acc2Engine::DeserializeProof(ByteReader* r, Proof* out) const {
  return crypto::DeserializeG1(r, &out->pi);
}

}  // namespace vchain::accum

// Accumulator trusted setup and the key oracle.
//
// Both accumulator constructions need powers of a secret s in the exponent:
//   acc1 (q-SDH):  pk = (g^{s^0}, ..., g^{s^N})        N = max multiset size
//   acc2 (q-DHE):  pk = (g^{s^j}) for j in [0, 2q-2] \ {q},  q = universe size
//
// The paper notes (§5.2.2) that publishing acc2's full key is impractical for
// hash-sized universes and proposes a trusted oracle (TTP or SGX enclave)
// that owns s and answers public-key requests on demand. `KeyOracle` plays
// that role here: it serves lazily-computed, memoized powers of s in G1/G2.
// It also exposes explicitly-named *trusted-path* evaluation helpers used for
// fast test fixtures and for skipping miner work that a benchmark is not
// measuring; honest-path code never touches them.

#ifndef VCHAIN_ACCUM_KEYS_H_
#define VCHAIN_ACCUM_KEYS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "crypto/bn254.h"
#include "crypto/pairing.h"

namespace vchain::accum {

using crypto::Fr;
using crypto::G1;
using crypto::G1Affine;
using crypto::G2;
using crypto::G2Affine;
using crypto::U256;

/// Parameters fixed at setup time.
struct AccParams {
  /// acc2 universe is [1, 2^universe_bits - 1]; powers go up to 2^(bits+1)-2.
  uint32_t universe_bits = 16;

  uint64_t UniverseSize() const { return uint64_t{1} << universe_bits; }
};

/// Precomputed 4-bit-window fixed-base table for fast g^k.
template <typename F>
class FixedBaseTable {
 public:
  using Affine = crypto::AffinePoint<F>;
  using Point = crypto::JacobianPoint<F>;

  explicit FixedBaseTable(const Affine& base);

  /// base * k.
  Point Mul(const U256& k) const;

 private:
  // table_[w][d-1] = base * (d << (4w)), d in [1, 15].
  std::vector<std::array<Point, 15>> table_;
};

/// The trusted oracle: owns the setup secret, serves public-key powers.
class KeyOracle {
 public:
  /// Deterministic setup from a seed (tests/benches). A deployment would
  /// sample the secret from an entropy source or an MPC ceremony.
  static std::shared_ptr<KeyOracle> Create(uint64_t seed,
                                           const AccParams& params = {});

  const AccParams& params() const { return params_; }

  // --- public-key interface (what an untrusted party may request) ---------

  /// g1^{s^j} / g2^{s^j}, memoized, thread-safe.
  G1Affine G1PowerOf(uint64_t j);
  G2Affine G2PowerOf(uint64_t j);

  /// Same value, no memoization. Used for acc2's disjointness cross terms
  /// x_i + q - y_j, which rarely recur — memoizing them would grow the cache
  /// by |X|*|Y| entries per proof without amortization.
  G1Affine G1PowerOfUncached(uint64_t j) const {
    return CommitG1(SecretPow(j)).ToAffine();
  }

  /// Eagerly materialize consecutive powers [0, n] (acc1 proving needs a
  /// dense prefix; this amortizes the lock).
  void WarmupG1(uint64_t n);
  void WarmupG2(uint64_t n);

  // --- trusted-path helpers (oracle-internal; see file comment) -----------

  /// s^e in Fr.
  Fr SecretPow(uint64_t e) const;
  /// Evaluate a polynomial-in-s value directly: g1^v / g2^v.
  G1 CommitG1(const Fr& v) const;
  G2 CommitG2(const Fr& v) const;
  /// The secret itself — used only by trusted-path digest evaluation and by
  /// security tests that play the adversary's game with known randomness.
  const Fr& secret() const { return s_; }

 private:
  KeyOracle(const Fr& s, const AccParams& params);

  AccParams params_;
  Fr s_;
  FixedBaseTable<crypto::Fp> g1_table_;
  FixedBaseTable<crypto::Fp2> g2_table_;

  std::mutex mu_;
  // Dense prefix caches (acc1-style consecutive powers)...
  std::vector<G1Affine> g1_dense_;
  std::vector<Fr> s_dense_;  // s^j alongside, to extend cheaply
  std::vector<G2Affine> g2_dense_;
  // ...plus sparse memo for acc2's scattered indices.
  std::unordered_map<uint64_t, G1Affine> g1_sparse_;
  std::unordered_map<uint64_t, G2Affine> g2_sparse_;
};

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_KEYS_H_

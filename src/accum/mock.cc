#include "accum/mock.h"

namespace vchain::accum {

namespace {

void PutFr(const Fr& v, ByteWriter* w) {
  uint8_t buf[32];
  crypto::U256ToBytesBE(v.ToCanonical(), buf);
  w->PutFixed(ByteSpan(buf, 32));
}

Status GetFr(ByteReader* r, Fr* out) {
  Bytes buf;
  VCHAIN_RETURN_IF_ERROR(r->GetFixed(32, &buf));
  crypto::U256 v = crypto::U256FromBytesBE(buf.data());
  if (!(v < crypto::kBnR)) return Status::Corruption("Fr value out of range");
  *out = Fr::FromCanonical(v);
  return Status::OK();
}

}  // namespace

Fr MockAcc1Engine::EvalCharPoly(const Multiset& w) const {
  Fr acc = Fr::One();
  const Fr& s = oracle_->secret();
  for (const Multiset::Entry& e : w.entries()) {
    Fr term = Fr::FromUint64(e.element) + s;
    for (uint32_t k = 0; k < e.count; ++k) acc *= term;
  }
  return acc;
}

Result<MockAcc1Engine::Proof> MockAcc1Engine::ProveDisjoint(
    const Multiset& w, const Multiset& clause) const {
  auto char_poly = [](const Multiset& m) {
    std::vector<Fr> roots;
    for (const Multiset::Entry& e : m.entries()) {
      for (uint32_t k = 0; k < e.count; ++k) {
        roots.push_back(Fr::FromUint64(e.element));
      }
    }
    return Poly::FromShiftedRoots(roots);
  };
  Poly q1, q2;
  VCHAIN_RETURN_IF_ERROR(
      PolyBezoutForCoprime(char_poly(w), char_poly(clause), &q1, &q2));
  const Fr& s = oracle_->secret();
  return Proof{q1.Eval(s), q2.Eval(s)};
}

void MockAcc1Engine::SerializeDigest(const ObjectDigest& d,
                                     ByteWriter* w) const {
  PutFr(d.value, w);
}
Status MockAcc1Engine::DeserializeDigest(ByteReader* r,
                                         ObjectDigest* out) const {
  return GetFr(r, &out->value);
}
void MockAcc1Engine::SerializeProof(const Proof& p, ByteWriter* w) const {
  PutFr(p.f1, w);
  PutFr(p.f2, w);
}
Status MockAcc1Engine::DeserializeProof(ByteReader* r, Proof* out) const {
  VCHAIN_RETURN_IF_ERROR(GetFr(r, &out->f1));
  return GetFr(r, &out->f2);
}

Fr MockAcc2Engine::EvalA(const Multiset& w) const {
  Fr acc = Fr::Zero();
  for (const Multiset::Entry& e : w.entries()) {
    acc += Fr::FromUint64(e.count) * oracle_->SecretPow(MapElement(e.element));
  }
  return acc;
}

Fr MockAcc2Engine::EvalB(const Multiset& w) const {
  uint64_t q = oracle_->params().UniverseSize();
  Fr acc = Fr::Zero();
  for (const Multiset::Entry& e : w.entries()) {
    acc +=
        Fr::FromUint64(e.count) * oracle_->SecretPow(q - MapElement(e.element));
  }
  return acc;
}

Result<MockAcc2Engine::Proof> MockAcc2Engine::ProveDisjoint(
    const Multiset& w, const Multiset& clause) const {
  Multiset mw, mc;
  for (const Multiset::Entry& e : w.entries()) {
    mw.Add(MapElement(e.element), e.count);
  }
  for (const Multiset::Entry& e : clause.entries()) {
    mc.Add(MapElement(e.element), e.count);
  }
  if (mw.Intersects(mc)) {
    return Status::InvalidArgument("mapped multisets intersect");
  }
  return Proof{EvalA(w) * EvalB(clause)};
}

void MockAcc2Engine::SerializeDigest(const ObjectDigest& d,
                                     ByteWriter* w) const {
  PutFr(d.value, w);
}
Status MockAcc2Engine::DeserializeDigest(ByteReader* r,
                                         ObjectDigest* out) const {
  return GetFr(r, &out->value);
}
void MockAcc2Engine::SerializeProof(const Proof& p, ByteWriter* w) const {
  PutFr(p.pi, w);
}
Status MockAcc2Engine::DeserializeProof(ByteReader* r, Proof* out) const {
  return GetFr(r, &out->pi);
}

}  // namespace vchain::accum

#include "accum/polynomial.h"

#include <cassert>

#include "accum/ntt.h"

namespace vchain::accum {

Poly Poly::Constant(const Fr& v) {
  if (v.IsZero()) return Poly();
  return Poly({v});
}

Poly Poly::FromShiftedRoots(const std::vector<Fr>& roots) {
  // Divide and conquer keeps intermediate products balanced.
  if (roots.empty()) return Constant(Fr::One());
  struct Builder {
    const std::vector<Fr>& r;
    Poly Build(size_t lo, size_t hi) const {  // [lo, hi)
      if (hi - lo == 1) {
        return Poly({r[lo], Fr::One()});  // Z + root
      }
      size_t mid = lo + (hi - lo) / 2;
      return Build(lo, mid) * Build(mid, hi);
    }
  };
  return Builder{roots}.Build(0, roots.size());
}

Fr Poly::Eval(const Fr& x) const {
  Fr acc = Fr::Zero();
  for (size_t i = c_.size(); i-- > 0;) {
    acc = acc * x + c_[i];
  }
  return acc;
}

Poly Poly::operator+(const Poly& o) const {
  std::vector<Fr> out(std::max(c_.size(), o.c_.size()), Fr::Zero());
  for (size_t i = 0; i < c_.size(); ++i) out[i] += c_[i];
  for (size_t i = 0; i < o.c_.size(); ++i) out[i] += o.c_[i];
  return Poly(std::move(out));
}

Poly Poly::operator-(const Poly& o) const {
  std::vector<Fr> out(std::max(c_.size(), o.c_.size()), Fr::Zero());
  for (size_t i = 0; i < c_.size(); ++i) out[i] += c_[i];
  for (size_t i = 0; i < o.c_.size(); ++i) out[i] -= o.c_[i];
  return Poly(std::move(out));
}

Poly Poly::operator*(const Poly& o) const {
  if (IsZero() || o.IsZero()) return Poly();
  // Above the crossover, O(n log n) NTT multiplication takes over; this is
  // what keeps acc1's skip-entry accumulation (thousands of roots) tractable.
  constexpr size_t kNttThreshold = 64;
  if (c_.size() + o.c_.size() >= kNttThreshold) {
    return Poly(NttMultiply(c_, o.c_));
  }
  std::vector<Fr> out(c_.size() + o.c_.size() - 1, Fr::Zero());
  for (size_t i = 0; i < c_.size(); ++i) {
    if (c_[i].IsZero()) continue;
    for (size_t j = 0; j < o.c_.size(); ++j) {
      out[i + j] += c_[i] * o.c_[j];
    }
  }
  return Poly(std::move(out));
}

Poly Poly::ScaleBy(const Fr& k) const {
  std::vector<Fr> out = c_;
  for (Fr& x : out) x *= k;
  return Poly(std::move(out));
}

void Poly::DivRem(const Poly& d, Poly* q, Poly* r) const {
  assert(!d.IsZero());
  if (Degree() < d.Degree()) {
    *q = Poly();
    *r = *this;
    return;
  }
  std::vector<Fr> rem = c_;
  std::vector<Fr> quot(c_.size() - d.c_.size() + 1, Fr::Zero());
  Fr lead_inv = d.Leading().Inverse();
  for (size_t i = rem.size(); i-- >= d.c_.size();) {
    Fr factor = rem[i] * lead_inv;
    if (!factor.IsZero()) {
      quot[i - d.c_.size() + 1] = factor;
      for (size_t j = 0; j < d.c_.size(); ++j) {
        rem[i - d.c_.size() + 1 + j] -= factor * d.c_[j];
      }
    }
    if (i == 0) break;  // avoid size_t underflow in the loop condition
  }
  rem.resize(d.c_.size() - 1);
  *q = Poly(std::move(quot));
  *r = Poly(std::move(rem));
}

void PolyXgcd(const Poly& a, const Poly& b, Poly* g, Poly* u, Poly* v) {
  assert(!(a.IsZero() && b.IsZero()));
  Poly r0 = a, r1 = b;
  Poly s0 = Poly::Constant(Fr::One()), s1 = Poly::Zero();
  Poly t0 = Poly::Zero(), t1 = Poly::Constant(Fr::One());
  while (!r1.IsZero()) {
    Poly q, r;
    r0.DivRem(r1, &q, &r);
    r0 = r1;
    r1 = r;
    Poly s2 = s0 - q * s1;
    s0 = s1;
    s1 = s2;
    Poly t2 = t0 - q * t1;
    t0 = t1;
    t1 = t2;
  }
  // Normalize the gcd to be monic.
  Fr lead_inv = r0.Leading().Inverse();
  *g = r0.ScaleBy(lead_inv);
  *u = s0.ScaleBy(lead_inv);
  *v = t0.ScaleBy(lead_inv);
}

Status PolyBezoutForCoprime(const Poly& a, const Poly& b, Poly* u, Poly* v) {
  Poly g;
  PolyXgcd(a, b, &g, u, v);
  if (g.Degree() != 0) {
    return Status::InvalidArgument(
        "polynomials share a root (multisets intersect)");
  }
  return Status::OK();
}

}  // namespace vchain::accum

// Attribute elements.
//
// Every queryable attribute value — a set-valued keyword, a transaction
// address, or one binary-prefix fragment of a numerical attribute (§5.3) —
// is encoded into a 64-bit `Element` id by hashing a canonical string form.
// Both the miner (building the ADS), the SP (proving), and the light node
// (verifying) derive identical ids from the raw values, so ids never travel
// on the wire.
//
// Engines may fold ids into a smaller accumulator universe (acc2's
// [1, q-1]); the protocol treats two elements as equal when their *mapped*
// ids collide, which keeps soundness/completeness exact in mapped space (a
// rare collision can only add a verifiable false-positive result that the
// client filters locally; see DESIGN.md).

#ifndef VCHAIN_ACCUM_ELEMENT_H_
#define VCHAIN_ACCUM_ELEMENT_H_

#include <cstdint>
#include <string>

namespace vchain::accum {

using Element = uint64_t;

/// Encode a set-valued attribute keyword (e.g. "Sedan", "send:1FFYc").
Element EncodeKeyword(const std::string& keyword);

/// Encode one binary-prefix fragment of a numerical attribute:
/// dimension `dim`, the prefix consisting of the top `prefix_len` bits of
/// `bits` (values use `total_bits`-bit unsigned representations). E.g. the
/// paper's "10*" in dimension 1 of an 8-bit space is
/// EncodePrefix(1, 0b10, 2, 8).
Element EncodePrefix(uint32_t dim, uint64_t prefix_bits, uint32_t prefix_len,
                     uint32_t total_bits);

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_ELEMENT_H_

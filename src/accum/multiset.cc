#include "accum/multiset.h"

#include <algorithm>
#include <sstream>

namespace vchain::accum {

void Multiset::Add(Element e, uint32_t count) {
  if (count == 0) return;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), e,
      [](const Entry& entry, Element v) { return entry.element < v; });
  if (it != entries_.end() && it->element == e) {
    it->count += count;
  } else {
    entries_.insert(it, Entry{e, count});
  }
}

bool Multiset::Contains(Element e) const { return CountOf(e) > 0; }

uint32_t Multiset::CountOf(Element e) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), e,
      [](const Entry& entry, Element v) { return entry.element < v; });
  if (it != entries_.end() && it->element == e) return it->count;
  return 0;
}

uint64_t Multiset::TotalSize() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) total += e.count;
  return total;
}

Multiset Multiset::UnionWith(const Multiset& o) const {
  Multiset out;
  out.entries_.reserve(entries_.size() + o.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < o.entries_.size()) {
    if (j == o.entries_.size() ||
        (i < entries_.size() && entries_[i].element < o.entries_[j].element)) {
      out.entries_.push_back(entries_[i++]);
    } else if (i == entries_.size() ||
               o.entries_[j].element < entries_[i].element) {
      out.entries_.push_back(o.entries_[j++]);
    } else {
      out.entries_.push_back(
          Entry{entries_[i].element,
                std::max(entries_[i].count, o.entries_[j].count)});
      ++i;
      ++j;
    }
  }
  return out;
}

Multiset Multiset::SumWith(const Multiset& o) const {
  Multiset out;
  out.entries_.reserve(entries_.size() + o.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < o.entries_.size()) {
    if (j == o.entries_.size() ||
        (i < entries_.size() && entries_[i].element < o.entries_[j].element)) {
      out.entries_.push_back(entries_[i++]);
    } else if (i == entries_.size() ||
               o.entries_[j].element < entries_[i].element) {
      out.entries_.push_back(o.entries_[j++]);
    } else {
      out.entries_.push_back(Entry{entries_[i].element,
                                   entries_[i].count + o.entries_[j].count});
      ++i;
      ++j;
    }
  }
  return out;
}

namespace {

/// Append-merge-coalesce: append `other` behind the existing sorted entries,
/// restore order with an in-place merge, then fold runs of equal elements
/// with `combine`. O(n + m), one amortized reallocation.
template <typename Combine>
void MergeInPlace(std::vector<Multiset::Entry>* entries,
                  const std::vector<Multiset::Entry>& other, Combine combine) {
  if (other.empty()) return;
  if (entries->empty()) {
    *entries = other;
    return;
  }
  if (entries->back().element < other.front().element) {
    entries->insert(entries->end(), other.begin(), other.end());
    return;
  }
  auto mid = static_cast<std::ptrdiff_t>(entries->size());
  entries->insert(entries->end(), other.begin(), other.end());
  std::inplace_merge(
      entries->begin(), entries->begin() + mid, entries->end(),
      [](const Multiset::Entry& a, const Multiset::Entry& b) {
        return a.element < b.element;
      });
  size_t out = 0;
  for (size_t i = 0; i < entries->size();) {
    Multiset::Entry e = (*entries)[i++];
    while (i < entries->size() && (*entries)[i].element == e.element) {
      e.count = combine(e.count, (*entries)[i++].count);
    }
    (*entries)[out++] = e;
  }
  entries->resize(out);
}

}  // namespace

void Multiset::SumInPlace(const Multiset& o) {
  if (&o == this) {  // self-sum doubles every count
    for (Entry& e : entries_) e.count *= 2;
    return;
  }
  MergeInPlace(&entries_, o.entries_,
               [](uint32_t a, uint32_t b) { return a + b; });
}

void Multiset::UnionInPlace(const Multiset& o) {
  if (&o == this) return;  // self-union is the identity
  MergeInPlace(&entries_, o.entries_,
               [](uint32_t a, uint32_t b) { return std::max(a, b); });
}

void Multiset::AddAll(const std::vector<const Multiset*>& parts) {
  if (parts.empty()) return;
  // Pairwise tree merge: O(total * log k) instead of the O(k * total) of
  // folding every part into one ever-growing accumulator.
  std::vector<Multiset> level;
  level.reserve((parts.size() + 1) / 2);
  for (size_t i = 0; i < parts.size(); i += 2) {
    if (i + 1 < parts.size()) {
      level.push_back(parts[i]->SumWith(*parts[i + 1]));
    } else {
      level.push_back(*parts[i]);
    }
  }
  while (level.size() > 1) {
    size_t out = 0;
    for (size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) level[i].SumInPlace(level[i + 1]);
      if (out != i) level[out] = std::move(level[i]);
      ++out;
    }
    level.resize(out);
  }
  SumInPlace(level[0]);
}

bool Multiset::Intersects(const Multiset& o) const {
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < o.entries_.size()) {
    if (entries_[i].element < o.entries_[j].element) {
      ++i;
    } else if (o.entries_[j].element < entries_[i].element) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

double Multiset::Jaccard(const Multiset& o) const {
  uint64_t min_sum = 0, max_sum = 0;
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < o.entries_.size()) {
    if (j == o.entries_.size() ||
        (i < entries_.size() && entries_[i].element < o.entries_[j].element)) {
      max_sum += entries_[i++].count;
    } else if (i == entries_.size() ||
               o.entries_[j].element < entries_[i].element) {
      max_sum += o.entries_[j++].count;
    } else {
      min_sum += std::min(entries_[i].count, o.entries_[j].count);
      max_sum += std::max(entries_[i].count, o.entries_[j].count);
      ++i;
      ++j;
    }
  }
  if (max_sum == 0) return 1.0;  // two empty multisets are identical
  return static_cast<double>(min_sum) / static_cast<double>(max_sum);
}

void Multiset::Serialize(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    w->PutU64(e.element);
    w->PutU32(e.count);
  }
}

Status Multiset::Deserialize(ByteReader* r, Multiset* out) {
  uint32_t n = 0;
  VCHAIN_RETURN_IF_ERROR(r->GetU32(&n));
  if (n > 1u << 24) return Status::Corruption("multiset too large");
  // Each entry costs 12 encoded bytes; a count the buffer cannot possibly
  // hold must not size an allocation (hostile-length rule, common/serde.h).
  if (n > r->Remaining() / 12) {
    return Status::Corruption("multiset count exceeds buffer");
  }
  Multiset m;
  m.entries_.reserve(n);
  Element prev = 0;
  for (uint32_t i = 0; i < n; ++i) {
    Entry e{};
    VCHAIN_RETURN_IF_ERROR(r->GetU64(&e.element));
    VCHAIN_RETURN_IF_ERROR(r->GetU32(&e.count));
    if (e.count == 0) return Status::Corruption("zero multiset count");
    if (i > 0 && e.element <= prev) {
      return Status::Corruption("multiset entries not strictly sorted");
    }
    prev = e.element;
    m.entries_.push_back(e);
  }
  *out = std::move(m);
  return Status::OK();
}

std::string Multiset::ToString() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i) os << ", ";
    os << entries_[i].element;
    if (entries_[i].count > 1) os << "x" << entries_[i].count;
  }
  os << "}";
  return os.str();
}

}  // namespace vchain::accum

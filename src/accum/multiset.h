// Multisets of attribute elements — the `W` objects of the paper.
//
// Stored as a sorted (element, count) vector. Three combination operators
// are used by the indexes:
//   * Union (max of counts)  — intra-block index nodes (Definition 6.1);
//   * Sum   (count addition) — inter-block skip entries and acc2 `Sum`
//                              aggregation (§6.2, §6.3);
//   * Intersection tests     — CNF clause matching.

#ifndef VCHAIN_ACCUM_MULTISET_H_
#define VCHAIN_ACCUM_MULTISET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "accum/element.h"
#include "common/serde.h"
#include "common/status.h"

namespace vchain::accum {

class Multiset {
 public:
  struct Entry {
    Element element;
    uint32_t count;
    bool operator==(const Entry&) const = default;
  };

  Multiset() = default;
  Multiset(std::initializer_list<Element> elements) {
    for (Element e : elements) Add(e);
  }

  static Multiset FromElements(const std::vector<Element>& elements) {
    Multiset m;
    for (Element e : elements) m.Add(e);
    return m;
  }

  /// Insert `count` copies of `e`.
  void Add(Element e, uint32_t count = 1);

  bool Contains(Element e) const;
  uint32_t CountOf(Element e) const;

  /// Number of distinct elements.
  size_t DistinctSize() const { return entries_.size(); }
  /// Total cardinality including multiplicity (the accumulated polynomial
  /// degree for acc1).
  uint64_t TotalSize() const;
  bool Empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Multiset union: per-element max of counts.
  Multiset UnionWith(const Multiset& o) const;
  /// Multiset sum: per-element addition of counts.
  Multiset SumWith(const Multiset& o) const;

  /// In-place variants: `this <- this op o` with no fresh allocation when
  /// the entries fit in place. The SP's per-clause aggregation and the
  /// miner's skip-entry construction are built on these — the copying
  /// `SumWith` form made those walks O(k^2) in total entries.
  void SumInPlace(const Multiset& o);
  void UnionInPlace(const Multiset& o);

  /// Sum many multisets into this one (repeated in-place merge).
  void AddAll(const std::vector<const Multiset*>& parts);

  /// True iff the supports share any element.
  bool Intersects(const Multiset& o) const;

  /// Multiset Jaccard similarity: sum(min)/sum(max) over counts.
  /// Used by the intra-block index clustering heuristic (Algorithm 2).
  double Jaccard(const Multiset& o) const;

  bool operator==(const Multiset& o) const { return entries_ == o.entries_; }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, Multiset* out);

  std::string ToString() const;

 private:
  std::vector<Entry> entries_;  // sorted by element, counts > 0
};

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_MULTISET_H_

#include "accum/element.h"

#include "common/serde.h"
#include "crypto/sha256.h"

namespace vchain::accum {

Element EncodeKeyword(const std::string& keyword) {
  return crypto::Hash64("k|" + keyword);
}

Element EncodePrefix(uint32_t dim, uint64_t prefix_bits, uint32_t prefix_len,
                     uint32_t total_bits) {
  ByteWriter w;
  w.PutU8('p');
  w.PutU32(dim);
  w.PutU64(prefix_bits);
  w.PutU32(prefix_len);
  w.PutU32(total_bits);
  crypto::Hash32 h = crypto::Sha256Digest(
      ByteSpan(w.bytes().data(), w.bytes().size()));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(h[i]) << (8 * i);
  return v;
}

}  // namespace vchain::accum

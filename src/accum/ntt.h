// Number-theoretic transform over the BN254 scalar field.
//
// Fr is exceptionally NTT-friendly: r - 1 = 2^28 * odd, so radix-2
// Cooley-Tukey transforms run for sizes up to 2^28. Construction 1 of the
// accumulator multiplies characteristic polynomials whose degree equals the
// multiset cardinality; inter-block skip entries push that into the
// thousands, where schoolbook O(n^2) dominates ADS construction (the paper's
// `both-acc1` pain point). `NttMultiply` brings that to O(n log n), and
// `Poly::FromShiftedRoots` switches to it automatically above a threshold.
//
// The primitive 2^28-th root of unity is derived at first use as
// g^((r-1)/2^28) for the smallest generator g — nothing hand-transcribed.

#ifndef VCHAIN_ACCUM_NTT_H_
#define VCHAIN_ACCUM_NTT_H_

#include <vector>

#include "crypto/field.h"

namespace vchain::accum {

using crypto::Fr;

/// Maximum supported transform size (2-adicity of r - 1).
inline constexpr uint32_t kMaxNttLogSize = 28;

/// In-place forward NTT of `a` (size must be a power of two <= 2^28).
void NttForward(std::vector<Fr>* a);
/// In-place inverse NTT.
void NttInverse(std::vector<Fr>* a);

/// Polynomial product via NTT; falls back to schoolbook for tiny inputs.
/// Inputs are coefficient vectors (no trailing-zero invariant required);
/// the result is exact (sized deg a + deg b + 1 before trimming).
std::vector<Fr> NttMultiply(const std::vector<Fr>& a,
                            const std::vector<Fr>& b);

/// The primitive 2^k-th root of unity used by the transforms (exposed for
/// tests).
Fr NttRootOfUnity(uint32_t log_size);

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_NTT_H_

#include "accum/acc1.h"

namespace vchain::accum {

Poly Acc1Engine::CharPoly(const Multiset& w) const {
  std::vector<Fr> roots;
  roots.reserve(w.TotalSize());
  for (const Multiset::Entry& e : w.entries()) {
    Fr x = Fr::FromUint64(e.element);
    for (uint32_t k = 0; k < e.count; ++k) roots.push_back(x);
  }
  return Poly::FromShiftedRoots(roots);
}

G1 Acc1Engine::CommitPolyG1(const Poly& p) const {
  if (p.IsZero()) return G1::Infinity();
  if (mode_ == ProverMode::kTrustedFast) {
    return oracle_->CommitG1(p.Eval(oracle_->secret()));
  }
  uint64_t deg = static_cast<uint64_t>(p.Degree());
  oracle_->WarmupG1(deg);
  std::vector<G1Affine> bases;
  std::vector<U256> scalars;
  bases.reserve(deg + 1);
  scalars.reserve(deg + 1);
  for (uint64_t i = 0; i <= deg; ++i) {
    if (p.coeffs()[i].IsZero()) continue;
    bases.push_back(oracle_->G1PowerOf(i));
    scalars.push_back(p.coeffs()[i].ToCanonical());
  }
  return crypto::MultiScalarMul(bases, scalars, pool_);
}

G2 Acc1Engine::CommitPolyG2(const Poly& p) const {
  if (p.IsZero()) return G2::Infinity();
  if (mode_ == ProverMode::kTrustedFast) {
    return oracle_->CommitG2(p.Eval(oracle_->secret()));
  }
  uint64_t deg = static_cast<uint64_t>(p.Degree());
  oracle_->WarmupG2(deg);
  std::vector<G2Affine> bases;
  std::vector<U256> scalars;
  for (uint64_t i = 0; i <= deg; ++i) {
    if (p.coeffs()[i].IsZero()) continue;
    bases.push_back(oracle_->G2PowerOf(i));
    scalars.push_back(p.coeffs()[i].ToCanonical());
  }
  return crypto::MultiScalarMul(bases, scalars, pool_);
}

Acc1Engine::ObjectDigest Acc1Engine::Digest(const Multiset& w) const {
  return ObjectDigest{CommitPolyG1(CharPoly(w)).ToAffine()};
}

Acc1Engine::QueryDigest Acc1Engine::QueryDigestOf(const Multiset& clause) const {
  return QueryDigest{CommitPolyG1(CharPoly(clause)).ToAffine()};
}

Result<Acc1Engine::Proof> Acc1Engine::ProveDisjoint(
    const Multiset& w, const Multiset& clause) const {
  Poly p1 = CharPoly(w);
  Poly p2 = CharPoly(clause);
  Poly q1, q2;
  // p1*q1 + p2*q2 = 1 exists iff the multisets are disjoint.
  VCHAIN_RETURN_IF_ERROR(PolyBezoutForCoprime(p1, p2, &q1, &q2));
  Proof proof;
  proof.f1 = CommitPolyG2(q1).ToAffine();
  proof.f2 = CommitPolyG2(q2).ToAffine();
  return proof;
}

bool Acc1Engine::VerifyDisjoint(const ObjectDigest& dw, const QueryDigest& dc,
                                const Proof& proof) const {
  // e(acc(X1), F1) * e(acc(X2), F2) * e(-g1, g2) == 1.
  G1Affine neg_g1 =
      G1::FromAffine(crypto::G1Generator()).Neg().ToAffine();
  return crypto::PairingProductIsOne({{dw.point, proof.f1},
                                      {dc.point, proof.f2},
                                      {neg_g1, crypto::G2Generator()}});
}

void Acc1Engine::SerializeDigest(const ObjectDigest& d, ByteWriter* w) const {
  crypto::SerializeG1(d.point, w);
}

Status Acc1Engine::DeserializeDigest(ByteReader* r, ObjectDigest* out) const {
  return crypto::DeserializeG1(r, &out->point);
}

void Acc1Engine::SerializeProof(const Proof& p, ByteWriter* w) const {
  crypto::SerializeG2(p.f1, w);
  crypto::SerializeG2(p.f2, w);
}

Status Acc1Engine::DeserializeProof(ByteReader* r, Proof* out) const {
  VCHAIN_RETURN_IF_ERROR(crypto::DeserializeG2(r, &out->f1));
  return crypto::DeserializeG2(r, &out->f2);
}

}  // namespace vchain::accum

// Multiset accumulator, Construction 2 (paper §5.2.2; q-DHE based, after
// Zhang et al. [35]).
//
// Elements live in a bounded universe [1, q-1] (q = 2^universe_bits); the
// 64-bit protocol element ids are folded into it by MapElement. With
//   A(X)(s) = sum_{x in X} m_x s^x        B(X)(s) = sum_{x in X} m_x s^{q-x}
// the scheme is
//   stored digest     dA(X) = g1^{A(X)(s)}            (G1, 32 bytes)
//   query-side digest dB(Y) = g2^{B(Y)(s)}            (recomputed by verifier)
//   ProveDisjoint     pi    = g1^{A(X)(s) * B(Y)(s)}  (exponents skip s^q
//                             exactly when X and Y are disjoint)
//   VerifyDisjoint    e(dA(X), dB(Y)) == e(pi, g2)
//
// The extra primitives the paper's online batching (§6.3) and lazy
// authentication (§7.2) build on:
//   Sum(d1..dn)       = product of dA's  == digest of the multiset sum
//   ProofSum(p1..pn)  = product of pi's  (requires a common query side Y)

#ifndef VCHAIN_ACCUM_ACC2_H_
#define VCHAIN_ACCUM_ACC2_H_

#include <memory>
#include <string>
#include <vector>

#include "accum/acc1.h"  // ProverMode
#include "accum/keys.h"
#include "accum/multiset.h"
#include "common/thread_pool.h"

namespace vchain::accum {

class Acc2Engine {
 public:
  struct ObjectDigest {
    G1Affine point;
    bool operator==(const ObjectDigest&) const = default;
  };
  struct QueryDigest {
    G2Affine point;
    bool operator==(const QueryDigest&) const = default;
  };
  struct Proof {
    G1Affine pi;
    bool operator==(const Proof&) const = default;
  };

  static constexpr bool kSupportsAggregation = true;

  Acc2Engine(std::shared_ptr<KeyOracle> oracle,
             ProverMode mode = ProverMode::kHonest)
      : oracle_(std::move(oracle)), mode_(mode) {}

  std::string Name() const { return "acc2"; }
  ProverMode mode() const { return mode_; }

  /// Fold a 64-bit element id into the accumulator universe [1, q-1].
  uint64_t MapElement(Element e) const {
    return (e % (oracle_->params().UniverseSize() - 1)) + 1;
  }

  ObjectDigest Digest(const Multiset& w) const;
  QueryDigest QueryDigestOf(const Multiset& clause) const;

  Result<Proof> ProveDisjoint(const Multiset& w, const Multiset& clause) const;

  bool VerifyDisjoint(const ObjectDigest& dw, const QueryDigest& dc,
                      const Proof& proof) const;

  /// acc(X1 + ... + Xn) from the individual digests (multiset sum).
  ObjectDigest SumDigests(const std::vector<ObjectDigest>& digests) const;
  /// Aggregate proofs that share the same query side.
  Proof SumProofs(const std::vector<Proof>& proofs) const;

  void SerializeDigest(const ObjectDigest& d, ByteWriter* w) const;
  Status DeserializeDigest(ByteReader* r, ObjectDigest* out) const;
  void SerializeProof(const Proof& p, ByteWriter* w) const;
  Status DeserializeProof(ByteReader* r, Proof* out) const;
  size_t DigestByteSize() const { return crypto::kG1SerializedSize; }
  size_t ProofByteSize() const { return crypto::kG1SerializedSize; }

  const std::shared_ptr<KeyOracle>& oracle() const { return oracle_; }

  /// Route honest-path multiexps through `pool` (window-parallel MSM).
  /// Null (the default) keeps them serial; results are bit-identical either
  /// way. Typically set to &ThreadPool::Shared().
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

 private:
  /// The multiset with ids folded into the universe (counts merged on
  /// collision).
  Multiset MapMultiset(const Multiset& w) const;

  std::shared_ptr<KeyOracle> oracle_;
  ProverMode mode_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_ACC2_H_

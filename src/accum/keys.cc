#include "accum/keys.h"

#include "common/rand.h"

namespace vchain::accum {

template <typename F>
FixedBaseTable<F>::FixedBaseTable(const Affine& base) {
  table_.resize(64);
  Point cur = Point::FromAffine(base);
  for (int w = 0; w < 64; ++w) {
    // cur == base * 2^{4w}; fill d*cur for d = 1..15.
    table_[w][0] = cur;
    for (int d = 1; d < 15; ++d) {
      table_[w][d] = table_[w][d - 1].Add(cur);
    }
    cur = table_[w][14].Add(cur);  // 16 * cur
  }
}

template <typename F>
typename FixedBaseTable<F>::Point FixedBaseTable<F>::Mul(const U256& k) const {
  Point acc = Point::Infinity();
  for (int w = 0; w < 64; ++w) {
    uint64_t digit = (k.limb[w / 16] >> (4 * (w % 16))) & 0xF;
    if (digit != 0) {
      acc = acc.Add(table_[w][digit - 1]);
    }
  }
  return acc;
}

template class FixedBaseTable<crypto::Fp>;
template class FixedBaseTable<crypto::Fp2>;

KeyOracle::KeyOracle(const Fr& s, const AccParams& params)
    : params_(params),
      s_(s),
      g1_table_(crypto::G1Generator()),
      g2_table_(crypto::G2Generator()) {
  g1_dense_.push_back(crypto::G1Generator());
  g2_dense_.push_back(crypto::G2Generator());
  s_dense_.push_back(Fr::One());
}

std::shared_ptr<KeyOracle> KeyOracle::Create(uint64_t seed,
                                             const AccParams& params) {
  Rng rng(seed);
  Fr s = Fr::FromU256Reduce(U256(rng.Next(), rng.Next(), rng.Next(), 0));
  if (s.IsZero()) s = Fr::One();
  return std::shared_ptr<KeyOracle>(new KeyOracle(s, params));
}

Fr KeyOracle::SecretPow(uint64_t e) const {
  Fr acc = Fr::One();
  Fr base = s_;
  while (e != 0) {
    if (e & 1) acc *= base;
    base = base.Square();
    e >>= 1;
  }
  return acc;
}

G1 KeyOracle::CommitG1(const Fr& v) const {
  return g1_table_.Mul(v.ToCanonical());
}

G2 KeyOracle::CommitG2(const Fr& v) const {
  return g2_table_.Mul(v.ToCanonical());
}

G1Affine KeyOracle::G1PowerOf(uint64_t j) {
  std::lock_guard<std::mutex> lock(mu_);
  if (j < g1_dense_.size()) return g1_dense_[j];
  auto it = g1_sparse_.find(j);
  if (it != g1_sparse_.end()) return it->second;
  G1Affine p = CommitG1(SecretPow(j)).ToAffine();
  g1_sparse_.emplace(j, p);
  return p;
}

G2Affine KeyOracle::G2PowerOf(uint64_t j) {
  std::lock_guard<std::mutex> lock(mu_);
  if (j < g2_dense_.size()) return g2_dense_[j];
  auto it = g2_sparse_.find(j);
  if (it != g2_sparse_.end()) return it->second;
  G2Affine p = CommitG2(SecretPow(j)).ToAffine();
  g2_sparse_.emplace(j, p);
  return p;
}

void KeyOracle::WarmupG1(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (s_dense_.size() <= n + 1) {
    s_dense_.push_back(s_dense_.back() * s_);
  }
  while (g1_dense_.size() <= n) {
    g1_dense_.push_back(CommitG1(s_dense_[g1_dense_.size()]).ToAffine());
  }
}

void KeyOracle::WarmupG2(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (s_dense_.size() <= n + 1) {
    s_dense_.push_back(s_dense_.back() * s_);
  }
  while (g2_dense_.size() <= n) {
    g2_dense_.push_back(CommitG2(s_dense_[g2_dense_.size()]).ToAffine());
  }
}

}  // namespace vchain::accum

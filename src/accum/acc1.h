// Multiset accumulator, Construction 1 (paper §5.2.1; q-SDH based, after
// Papamanthou et al. [32]).
//
//   acc(X)            = g1^{P(X)(s)},  P(X)(Z) = prod_{x in X} (Z + x)
//   ProveDisjoint     = Bezout cofactors (Q1, Q2) of P(X1), P(X2) committed
//                       in G2: pi = (g2^{Q1(s)}, g2^{Q2(s)})
//   VerifyDisjoint    : e(acc(X1), F1) * e(acc(X2), F2) == e(g1, g2)
//
// (Type-3 mapping of the paper's symmetric-pairing description: stored
// digests live in G1, proof elements in G2; see DESIGN.md.)
//
// No digest/proof aggregation — that is Construction 2's extra power.

#ifndef VCHAIN_ACCUM_ACC1_H_
#define VCHAIN_ACCUM_ACC1_H_

#include <memory>
#include <string>

#include "accum/keys.h"
#include "accum/multiset.h"
#include "accum/polynomial.h"
#include "common/thread_pool.h"

namespace vchain::accum {

/// Prover work mode. `kHonest` computes commitments from served public-key
/// powers, which is what the paper's miner/SP cost figures measure.
/// `kTrustedFast` lets the oracle evaluate the committed value directly —
/// byte-identical results, used by tests and by benchmark phases whose cost
/// is not under measurement.
enum class ProverMode { kHonest, kTrustedFast };

class Acc1Engine {
 public:
  struct ObjectDigest {
    G1Affine point;
    bool operator==(const ObjectDigest&) const = default;
  };
  struct QueryDigest {
    G1Affine point;
    bool operator==(const QueryDigest&) const = default;
  };
  struct Proof {
    G2Affine f1, f2;
    bool operator==(const Proof&) const = default;
  };

  static constexpr bool kSupportsAggregation = false;

  Acc1Engine(std::shared_ptr<KeyOracle> oracle,
             ProverMode mode = ProverMode::kHonest)
      : oracle_(std::move(oracle)), mode_(mode) {}

  std::string Name() const { return "acc1"; }
  ProverMode mode() const { return mode_; }

  /// Identity: acc1 accumulates full 64-bit element ids (they embed
  /// injectively into Fr).
  uint64_t MapElement(Element e) const { return e; }

  ObjectDigest Digest(const Multiset& w) const;
  QueryDigest QueryDigestOf(const Multiset& clause) const;

  /// Fails with kInvalidArgument when the (mapped) multisets intersect.
  Result<Proof> ProveDisjoint(const Multiset& w, const Multiset& clause) const;

  bool VerifyDisjoint(const ObjectDigest& dw, const QueryDigest& dc,
                      const Proof& proof) const;

  void SerializeDigest(const ObjectDigest& d, ByteWriter* w) const;
  Status DeserializeDigest(ByteReader* r, ObjectDigest* out) const;
  void SerializeProof(const Proof& p, ByteWriter* w) const;
  Status DeserializeProof(ByteReader* r, Proof* out) const;
  size_t DigestByteSize() const { return crypto::kG1SerializedSize; }
  size_t ProofByteSize() const { return 2 * crypto::kG2SerializedSize; }

  const std::shared_ptr<KeyOracle>& oracle() const { return oracle_; }

  /// Route honest-path multiexps through `pool` (window-parallel MSM).
  /// Null (the default) keeps them serial; results are bit-identical either
  /// way. Typically set to &ThreadPool::Shared().
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  ThreadPool* thread_pool() const { return pool_; }

 private:
  /// Characteristic polynomial of the mapped multiset.
  Poly CharPoly(const Multiset& w) const;
  /// Commit a polynomial-in-s: honest = multiexp over pk powers,
  /// trusted = direct evaluation (identical group element).
  G1 CommitPolyG1(const Poly& p) const;
  G2 CommitPolyG2(const Poly& p) const;

  std::shared_ptr<KeyOracle> oracle_;
  ProverMode mode_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_ACC1_H_

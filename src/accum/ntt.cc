#include "accum/ntt.h"

#include <cassert>

namespace vchain::accum {

namespace {

using crypto::U256;

/// g^((r-1)/2^28) for the smallest multiplicative generator g of Fr*.
/// Verified once by checking the order is exactly 2^28.
Fr Primitive2AdicRoot() {
  static const Fr kRoot = [] {
    // r - 1 = 2^28 * odd.
    U256 odd = crypto::kBnR;
    odd.SubInPlace(U256(1));
    for (uint32_t i = 0; i < kMaxNttLogSize; ++i) odd.Shr1InPlace();
    // Find a generator candidate: w = g^odd has order 2^28 iff
    // w^(2^27) != 1. Small g values are tested in turn.
    for (uint64_t g = 2;; ++g) {
      Fr w = Fr::FromUint64(g).Pow(odd);
      Fr probe = w;
      for (uint32_t i = 0; i < kMaxNttLogSize - 1; ++i) probe = probe.Square();
      if (!(probe == Fr::One())) {
        // probe == -1 here; w has full 2-power order.
        return w;
      }
    }
  }();
  return kRoot;
}

void BitReverse(std::vector<Fr>* a) {
  size_t n = a->size();
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap((*a)[i], (*a)[j]);
  }
}

void Transform(std::vector<Fr>* a, bool inverse) {
  size_t n = a->size();
  assert((n & (n - 1)) == 0);
  BitReverse(a);
  for (size_t len = 2; len <= n; len <<= 1) {
    uint32_t log_len = 0;
    while ((size_t{1} << log_len) < len) ++log_len;
    Fr wn = NttRootOfUnity(log_len);
    if (inverse) wn = wn.Inverse();
    for (size_t i = 0; i < n; i += len) {
      Fr w = Fr::One();
      for (size_t k = 0; k < len / 2; ++k) {
        Fr u = (*a)[i + k];
        Fr v = (*a)[i + k + len / 2] * w;
        (*a)[i + k] = u + v;
        (*a)[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
  if (inverse) {
    Fr n_inv = Fr::FromUint64(static_cast<uint64_t>(n)).Inverse();
    for (Fr& x : *a) x *= n_inv;
  }
}

}  // namespace

Fr NttRootOfUnity(uint32_t log_size) {
  assert(log_size <= kMaxNttLogSize);
  Fr w = Primitive2AdicRoot();
  for (uint32_t i = log_size; i < kMaxNttLogSize; ++i) w = w.Square();
  return w;
}

void NttForward(std::vector<Fr>* a) { Transform(a, /*inverse=*/false); }
void NttInverse(std::vector<Fr>* a) { Transform(a, /*inverse=*/true); }

std::vector<Fr> NttMultiply(const std::vector<Fr>& a,
                            const std::vector<Fr>& b) {
  if (a.empty() || b.empty()) return {};
  size_t result_size = a.size() + b.size() - 1;
  if (result_size < 32) {
    // Schoolbook wins for tiny operands.
    std::vector<Fr> out(result_size, Fr::Zero());
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        out[i + j] += a[i] * b[j];
      }
    }
    return out;
  }
  size_t n = 1;
  while (n < result_size) n <<= 1;
  std::vector<Fr> fa(a.begin(), a.end());
  std::vector<Fr> fb(b.begin(), b.end());
  fa.resize(n, Fr::Zero());
  fb.resize(n, Fr::Zero());
  NttForward(&fa);
  NttForward(&fb);
  for (size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  NttInverse(&fa);
  fa.resize(result_size);
  return fa;
}

}  // namespace vchain::accum

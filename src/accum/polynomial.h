// Dense univariate polynomials over the BN254 scalar field Fr.
//
// Construction 1 of the multiset accumulator commits to the characteristic
// polynomial P(Z) = prod_i (Z + x_i); its disjointness proofs are the Bezout
// cofactors of two such polynomials, obtained with the extended Euclidean
// algorithm (paper §5.2.1). This module provides exactly the arithmetic
// needed for that: multiplication, division with remainder, XGCD, and
// evaluation.

#ifndef VCHAIN_ACCUM_POLYNOMIAL_H_
#define VCHAIN_ACCUM_POLYNOMIAL_H_

#include <vector>

#include "common/status.h"
#include "crypto/field.h"

namespace vchain::accum {

using crypto::Fr;

/// Coefficient vector, index = power of Z; invariant: no trailing zeros
/// (the zero polynomial is the empty vector).
class Poly {
 public:
  Poly() = default;
  explicit Poly(std::vector<Fr> coeffs) : c_(std::move(coeffs)) { Trim(); }

  static Poly Zero() { return Poly(); }
  static Poly Constant(const Fr& v);
  /// prod (Z + roots[i])  — note the paper accumulates (x_i + s), i.e. the
  /// polynomial with root -x_i.
  static Poly FromShiftedRoots(const std::vector<Fr>& roots);

  bool IsZero() const { return c_.empty(); }
  /// Degree; -1 for the zero polynomial.
  int Degree() const { return static_cast<int>(c_.size()) - 1; }
  const std::vector<Fr>& coeffs() const { return c_; }
  const Fr& Leading() const { return c_.back(); }

  Fr Eval(const Fr& x) const;

  Poly operator+(const Poly& o) const;
  Poly operator-(const Poly& o) const;
  Poly operator*(const Poly& o) const;
  Poly ScaleBy(const Fr& k) const;

  bool operator==(const Poly& o) const { return c_ == o.c_; }

  /// Long division: *this = q * d + r with deg r < deg d. d must be nonzero.
  void DivRem(const Poly& d, Poly* q, Poly* r) const;

 private:
  void Trim() {
    while (!c_.empty() && c_.back().IsZero()) c_.pop_back();
  }

  std::vector<Fr> c_;
};

/// Extended Euclid: computes g = gcd(a, b) (monic) and u, v with
/// a*u + b*v = g. Inputs must not both be zero.
void PolyXgcd(const Poly& a, const Poly& b, Poly* g, Poly* u, Poly* v);

/// Bezout cofactors scaled so that a*u + b*v = 1; fails (kInvalidArgument)
/// when gcd(a, b) is non-constant — i.e. when the underlying multisets
/// intersect. This is the core of Construction 1's ProveDisjoint.
Status PolyBezoutForCoprime(const Poly& a, const Poly& b, Poly* u, Poly* v);

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_POLYNOMIAL_H_

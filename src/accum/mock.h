// Mock accumulator engines.
//
// These satisfy the same engine concept as Acc1Engine / Acc2Engine but
// replace every group element by its *exponent* in Fr and the pairing by a
// field multiplication. All algebraic identities the protocol relies on hold
// exactly, while operations cost nanoseconds instead of milliseconds — the
// protocol layers (indexes, query processing, subscriptions) are
// property-tested against these engines with far larger inputs than the real
// pairing would allow. Obviously *not* hiding: anyone can read the exponent,
// so the mocks provide zero security. Test-only.

#ifndef VCHAIN_ACCUM_MOCK_H_
#define VCHAIN_ACCUM_MOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "accum/acc1.h"
#include "accum/keys.h"
#include "accum/multiset.h"
#include "accum/polynomial.h"

namespace vchain::accum {

/// Transparent analogue of Construction 1: digest = P(X)(s) in Fr,
/// proof = (Q1(s), Q2(s)); verification checks the Bezout identity
/// P1(s)Q1(s) + P2(s)Q2(s) == 1.
class MockAcc1Engine {
 public:
  struct ObjectDigest {
    Fr value;
    bool operator==(const ObjectDigest&) const = default;
  };
  struct QueryDigest {
    Fr value;
    bool operator==(const QueryDigest&) const = default;
  };
  struct Proof {
    Fr f1, f2;
    bool operator==(const Proof&) const = default;
  };

  static constexpr bool kSupportsAggregation = false;

  explicit MockAcc1Engine(std::shared_ptr<KeyOracle> oracle)
      : oracle_(std::move(oracle)) {}

  std::string Name() const { return "mock-acc1"; }
  uint64_t MapElement(Element e) const { return e; }

  ObjectDigest Digest(const Multiset& w) const {
    return ObjectDigest{EvalCharPoly(w)};
  }
  QueryDigest QueryDigestOf(const Multiset& clause) const {
    return QueryDigest{EvalCharPoly(clause)};
  }

  Result<Proof> ProveDisjoint(const Multiset& w, const Multiset& clause) const;

  bool VerifyDisjoint(const ObjectDigest& dw, const QueryDigest& dc,
                      const Proof& p) const {
    return dw.value * p.f1 + dc.value * p.f2 == Fr::One();
  }

  void SerializeDigest(const ObjectDigest& d, ByteWriter* w) const;
  Status DeserializeDigest(ByteReader* r, ObjectDigest* out) const;
  void SerializeProof(const Proof& p, ByteWriter* w) const;
  Status DeserializeProof(ByteReader* r, Proof* out) const;
  size_t DigestByteSize() const { return 32; }
  size_t ProofByteSize() const { return 64; }

  const std::shared_ptr<KeyOracle>& oracle() const { return oracle_; }

 private:
  Fr EvalCharPoly(const Multiset& w) const;

  std::shared_ptr<KeyOracle> oracle_;
};

/// Transparent analogue of Construction 2 with Sum/ProofSum support:
/// digest = A(X)(s), query digest = B(Y)(s), proof = A*B; verification
/// checks A(X)(s) * B(Y)(s) == pi.
class MockAcc2Engine {
 public:
  struct ObjectDigest {
    Fr value;
    bool operator==(const ObjectDigest&) const = default;
  };
  struct QueryDigest {
    Fr value;
    bool operator==(const QueryDigest&) const = default;
  };
  struct Proof {
    Fr pi;
    bool operator==(const Proof&) const = default;
  };

  static constexpr bool kSupportsAggregation = true;

  explicit MockAcc2Engine(std::shared_ptr<KeyOracle> oracle)
      : oracle_(std::move(oracle)) {}

  std::string Name() const { return "mock-acc2"; }
  uint64_t MapElement(Element e) const {
    return (e % (oracle_->params().UniverseSize() - 1)) + 1;
  }

  ObjectDigest Digest(const Multiset& w) const { return ObjectDigest{EvalA(w)}; }
  QueryDigest QueryDigestOf(const Multiset& clause) const {
    return QueryDigest{EvalB(clause)};
  }

  Result<Proof> ProveDisjoint(const Multiset& w, const Multiset& clause) const;

  bool VerifyDisjoint(const ObjectDigest& dw, const QueryDigest& dc,
                      const Proof& p) const {
    return dw.value * dc.value == p.pi;
  }

  ObjectDigest SumDigests(const std::vector<ObjectDigest>& digests) const {
    Fr acc = Fr::Zero();
    for (const ObjectDigest& d : digests) acc += d.value;
    return ObjectDigest{acc};
  }
  Proof SumProofs(const std::vector<Proof>& proofs) const {
    Fr acc = Fr::Zero();
    for (const Proof& p : proofs) acc += p.pi;
    return Proof{acc};
  }

  void SerializeDigest(const ObjectDigest& d, ByteWriter* w) const;
  Status DeserializeDigest(ByteReader* r, ObjectDigest* out) const;
  void SerializeProof(const Proof& p, ByteWriter* w) const;
  Status DeserializeProof(ByteReader* r, Proof* out) const;
  size_t DigestByteSize() const { return 32; }
  size_t ProofByteSize() const { return 32; }

  const std::shared_ptr<KeyOracle>& oracle() const { return oracle_; }

 private:
  Fr EvalA(const Multiset& w) const;
  Fr EvalB(const Multiset& w) const;

  std::shared_ptr<KeyOracle> oracle_;
};

}  // namespace vchain::accum

#endif  // VCHAIN_ACCUM_MOCK_H_

// Minimal strict JSON for the wire protocol (net/wire.h).
//
// The protocol only needs a small, predictable slice of JSON: objects,
// arrays, strings, booleans, null, and *unsigned 64-bit integers* (block
// timestamps and heights use the full u64 range, which a double-backed
// number type would silently round). The parser is deliberately stricter
// than RFC 8259 where strictness removes attack surface:
//
//   * numbers must be non-negative integers that fit in u64 — no sign, no
//     fraction, no exponent, no leading zeros;
//   * nesting depth is capped (kMaxDepth) so a hostile body cannot blow the
//     stack with `[[[[...`;
//   * strings must be valid escapes only; \uXXXX decodes to UTF-8 with
//     surrogate pairs handled and lone surrogates rejected;
//   * input must be one value with nothing but whitespace after it.
//
// Errors are Status::InvalidArgument (malformed request input, mapped to
// HTTP 400 by the server), never a crash — the same contract the binary
// serde layer (common/serde.h) gives for Corruption.

#ifndef VCHAIN_NET_JSON_H_
#define VCHAIN_NET_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vchain::net {

class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(uint64_t v);
  static JsonValue Str(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  uint64_t as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>* mutable_items() { return &items_; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  void Set(std::string key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Compact canonical serialization (members in insertion order).
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  uint64_t number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

/// Strict parse of exactly one JSON value (see header comment for the
/// accepted subset). InvalidArgument on any deviation.
Result<JsonValue> ParseJson(std::string_view text);

/// Append `s` as a quoted JSON string literal with all required escapes.
void AppendJsonString(std::string_view s, std::string* out);

/// Maximum nesting depth ParseJson accepts.
inline constexpr size_t kMaxJsonDepth = 64;

}  // namespace vchain::net

#endif  // VCHAIN_NET_JSON_H_

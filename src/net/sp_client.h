// SpClient — the light user's side of the wire protocol (§3's query user).
//
// Trust ends at the socket. The client ships a query as JSON, receives the
// canonical response bytes, and believes *nothing* about them until they
// pass Verify against block headers its own LightClient validated (hash
// linkage + consensus proof, fetched via GET /headers and re-checked
// locally). The only out-of-band inputs are the public parameters every
// vChain participant shares anyway: the accumulator's trusted setup
// (oracle/seed) and the chain config — both fixed in Options.verify, the
// same ServiceOptions the SP was opened with.
//
//   SpClient::Options opts;
//   opts.host = "sp.example.com"; opts.port = 8443;
//   opts.verify = /* same engine/config/oracle_seed as the SP */;
//   auto client = SpClient::Connect(opts).TakeValue();
//
//   chain::LightClient light = client->NewLightClient();
//   client->SyncHeaders(&light);                  // validated header sync
//   auto result = client->Query(q);               // over the wire
//   Status ok = client->Verify(q, result.value(), light);  // local check
//
// Resilience: every wire call runs under Options.retry — exponential
// backoff with jitter across transport failures and the SP's own back-off
// signals (429/503, honoring Retry-After up to a cap). Every request in
// the protocol is an idempotent read, so retries can never double-apply;
// if a mutating endpoint is ever added, route it through Exchange with
// idempotent=false and the transport's sent_on_wire signal gates the
// retry.
//
// Verification plumbing reuses the engine-erased Service in a chain-less
// "verifier role": an in-memory Service holds the engine + config and
// exposes DecodeResult/Verify/VerifyNotification — no blocks, no store.

#ifndef VCHAIN_NET_SP_CLIENT_H_
#define VCHAIN_NET_SP_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/service.h"
#include "chain/light_client.h"
#include "net/http.h"

namespace vchain::net {

class SpClient {
 public:
  /// Exponential backoff with jitter for transient failures. An attempt is
  /// retried on transport errors (connect/send/recv) and on the SP's 429 /
  /// 503 back-off answers; protocol errors (400/404, Corruption) never
  /// retry. Backoff for attempt k is jittered uniformly in
  /// [base/2, base] with base = initial_backoff_ms * multiplier^(k-1),
  /// capped at max_backoff_ms; a server Retry-After raises (never lowers)
  /// the wait, capped at max_retry_after_seconds.
  struct RetryPolicy {
    int max_attempts = 3;  ///< 1 = no retries
    int initial_backoff_ms = 100;
    double backoff_multiplier = 2.0;
    int max_backoff_ms = 2000;
    int max_retry_after_seconds = 5;
    uint64_t jitter_seed = 0x76636A31;  ///< deterministic by default
  };

  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Public parameters for local verification: engine kind, chain config,
    /// trusted setup (oracle or oracle_seed/acc_params). `store_dir` is
    /// ignored — the verifier role never holds chain state.
    api::ServiceOptions verify;
    size_t max_response_bytes = 256u << 20;
    int recv_timeout_seconds = 60;
    int connect_timeout_seconds = 10;
    RetryPolicy retry;
  };

  /// Build the local verifier and the (lazily connected) HTTP transport.
  /// Does not touch the network — the first request does.
  static Result<std::unique_ptr<SpClient>> Connect(Options options);

  /// POST /query: returns the decoded result; response bytes are exactly
  /// what the SP sent (DecodeResult re-derives objects and VO size from
  /// them — nothing from HTTP metadata is trusted). Per-query SP failures
  /// (e.g. InvalidArgument for a malformed query) come back as the mapped
  /// Status.
  ///
  /// `server_trace_json` (optional): when non-null the request opts into
  /// server-side stage tracing (`X-Vchain-Trace: 1`) and receives the SP's
  /// per-stage breakdown JSON from the response header ("" when the SP
  /// sent none). Purely diagnostic — the response bytes, and therefore
  /// verification, are identical with tracing on or off.
  Result<api::QueryResult> Query(const core::Query& q,
                                 std::string* server_trace_json = nullptr);

  /// POST /query_batch: per-query results in input order.
  Result<std::vector<Result<api::QueryResult>>> QueryBatch(
      const std::vector<core::Query>& queries);

  /// GET /headers pages from `light->Height()` until the light client has
  /// validated every header up to the SP's tip. A header failing validation
  /// aborts with that status — a lying SP cannot advance the client.
  Status SyncHeaders(chain::LightClient* light);

  /// Local verification against validated headers (never the network).
  Status Verify(const core::Query& q, const api::QueryResult& result,
                const chain::LightClient& light) const;

  /// A standing query registered on the SP, returned by Subscribe(). The
  /// handle owns the wire cursor and the verification state: Poll/Stream
  /// verify every notification against light-client headers before
  /// surfacing it and dedup by (query_id, height), so at-least-once wire
  /// delivery (redelivery after a reconnect or a checkpoint replay) is
  /// exactly-once at the callback. Borrows the SpClient — must not outlive
  /// it; calls on one handle are not thread-safe against each other.
  class SubscriptionHandle {
   public:
    uint32_t id() const { return id_; }
    /// Next block height Poll will ask for.
    uint64_t cursor() const { return cursor_; }
    const core::Query& query() const { return query_; }

    /// One GET /events exchange: long-poll up to `wait_ms` (0 = return
    /// immediately), decode each notification from its canonical bytes,
    /// sync headers forward as needed, and verify. A notification that
    /// fails verification aborts with that status — a lying SP is an
    /// error, not an event. Returns the verified, deduplicated events
    /// (empty = nothing new) and advances the cursor.
    Result<std::vector<api::SubscriptionEvent>> Poll(
        chain::LightClient* light, int wait_ms = 0, size_t max_events = 64);

    /// Poll in a loop, invoking `callback` per verified event, until the
    /// callback returns false (clean stop, OK) or a wire/verify error.
    Status Stream(
        chain::LightClient* light,
        const std::function<bool(const api::SubscriptionEvent&)>& callback,
        int wait_ms = 1000);

    /// POST /unsubscribe. NotFound (already gone — e.g. a retried call
    /// that succeeded first time) counts as success.
    Status Unsubscribe();

   private:
    friend class SpClient;
    SpClient* client_ = nullptr;
    uint32_t id_ = 0;
    uint64_t cursor_ = 0;
    core::Query query_;  ///< what VerifyNotification checks against
  };

  /// POST /subscribe: register `q` as a standing query on the SP. The
  /// returned handle starts at the server-assigned cursor; poll it for
  /// verified notifications.
  Result<SubscriptionHandle> Subscribe(const core::Query& q);

  /// GET /stats, parsed.
  Result<api::ServiceStats> Stats();

  /// GET /healthz; OK iff the SP answers 200 with a matching engine kind.
  Status Healthz();

  /// A light client configured with the chain's consensus parameters.
  chain::LightClient NewLightClient() const {
    return chain::LightClient(options_.verify.config.pow);
  }

  const api::ServiceOptions& verify_options() const { return options_.verify; }

  /// Backoff for the retry after attempt `attempt` (1-based): jittered
  /// exponential per `policy`, using `jitter` as the randomness source.
  /// Exposed for tests.
  static int64_t ComputeBackoffMs(const RetryPolicy& policy, int attempt,
                                  uint64_t jitter);

 private:
  SpClient() = default;

  /// One wire exchange under the retry policy. `retry_busy` additionally
  /// retries the SP's 429/503 back-off answers (false where the busy
  /// signal *is* the answer, e.g. Healthz). Non-idempotent callers must
  /// pass idempotent=false: then a request that may have reached the wire
  /// is never re-sent.
  ///
  /// Every exchange carries an X-Request-Id, generated once per *logical*
  /// request and reused across its retries, so server logs show one id per
  /// user-visible operation no matter how many attempts it took.
  /// `extra_headers` are appended after it (how Query opts into tracing).
  Result<HttpResponse> Exchange(
      const std::string& method, const std::string& target,
      const std::string& body, const std::string& content_type,
      bool idempotent = true, bool retry_busy = true,
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

  /// SubscriptionHandle::Poll body (the handle only carries state).
  Result<std::vector<api::SubscriptionEvent>> PollSubscription(
      SubscriptionHandle* handle, chain::LightClient* light, int wait_ms,
      size_t max_events);

  Options options_;
  std::unique_ptr<HttpConnection> http_;
  std::unique_ptr<api::Service> verifier_;  ///< chain-less verifier role
  uint64_t jitter_state_ = 0;               ///< splitmix64 walk
  uint64_t id_state_ = 0;                   ///< request-id walk (separate
                                            ///< stream: ids must not perturb
                                            ///< backoff jitter sequences)
};

}  // namespace vchain::net

#endif  // VCHAIN_NET_SP_CLIENT_H_

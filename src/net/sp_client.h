// SpClient — the light user's side of the wire protocol (§3's query user).
//
// Trust ends at the socket. The client ships a query as JSON, receives the
// canonical response bytes, and believes *nothing* about them until they
// pass Verify against block headers its own LightClient validated (hash
// linkage + consensus proof, fetched via GET /headers and re-checked
// locally). The only out-of-band inputs are the public parameters every
// vChain participant shares anyway: the accumulator's trusted setup
// (oracle/seed) and the chain config — both fixed in Options.verify, the
// same ServiceOptions the SP was opened with.
//
//   SpClient::Options opts;
//   opts.host = "sp.example.com"; opts.port = 8443;
//   opts.verify = /* same engine/config/oracle_seed as the SP */;
//   auto client = SpClient::Connect(opts).TakeValue();
//
//   chain::LightClient light = client->NewLightClient();
//   client->SyncHeaders(&light);                  // validated header sync
//   auto result = client->Query(q);               // over the wire
//   Status ok = client->Verify(q, result.value(), light);  // local check
//
// Verification plumbing reuses the engine-erased Service in a chain-less
// "verifier role": an in-memory Service holds the engine + config and
// exposes DecodeResult/Verify/VerifyNotification — no blocks, no store.

#ifndef VCHAIN_NET_SP_CLIENT_H_
#define VCHAIN_NET_SP_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "api/service.h"
#include "chain/light_client.h"
#include "net/http.h"

namespace vchain::net {

class SpClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /// Public parameters for local verification: engine kind, chain config,
    /// trusted setup (oracle or oracle_seed/acc_params). `store_dir` is
    /// ignored — the verifier role never holds chain state.
    api::ServiceOptions verify;
    size_t max_response_bytes = 256u << 20;
    int recv_timeout_seconds = 60;
  };

  /// Build the local verifier and the (lazily connected) HTTP transport.
  /// Does not touch the network — the first request does.
  static Result<std::unique_ptr<SpClient>> Connect(Options options);

  /// POST /query: returns the decoded result; response bytes are exactly
  /// what the SP sent (DecodeResult re-derives objects and VO size from
  /// them — nothing from HTTP metadata is trusted). Per-query SP failures
  /// (e.g. InvalidArgument for a malformed query) come back as the mapped
  /// Status.
  Result<api::QueryResult> Query(const core::Query& q);

  /// POST /query_batch: per-query results in input order.
  Result<std::vector<Result<api::QueryResult>>> QueryBatch(
      const std::vector<core::Query>& queries);

  /// GET /headers pages from `light->Height()` until the light client has
  /// validated every header up to the SP's tip. A header failing validation
  /// aborts with that status — a lying SP cannot advance the client.
  Status SyncHeaders(chain::LightClient* light);

  /// Local verification against validated headers (never the network).
  Status Verify(const core::Query& q, const api::QueryResult& result,
                const chain::LightClient& light) const;

  /// GET /stats, parsed.
  Result<api::ServiceStats> Stats();

  /// GET /healthz; OK iff the SP answers 200 with a matching engine kind.
  Status Healthz();

  /// A light client configured with the chain's consensus parameters.
  chain::LightClient NewLightClient() const {
    return chain::LightClient(options_.verify.config.pow);
  }

  const api::ServiceOptions& verify_options() const { return options_.verify; }

 private:
  SpClient() = default;

  Options options_;
  std::unique_ptr<HttpConnection> http_;
  std::unique_ptr<api::Service> verifier_;  ///< chain-less verifier role
};

}  // namespace vchain::net

#endif  // VCHAIN_NET_SP_CLIENT_H_

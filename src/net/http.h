// Dependency-free HTTP/1.1 transport for the SP wire protocol.
//
// Deliberately a *subset* of HTTP/1.1 — exactly what an SP deployment
// behind a loopback, LAN, or reverse proxy needs, with every limit
// explicit so a hostile peer can neither exhaust memory nor wedge a
// worker:
//
//   * GET/POST, request head capped (kMaxHeadBytes), header count capped,
//     target length capped, bare-LF and obs-fold rejected;
//   * bodies require Content-Length (Transfer-Encoding is answered 501 —
//     chunked parsing is attack surface the protocol doesn't need);
//   * slow-loris protection: separate progress deadlines for the request
//     head and body (a peer that trickles one byte per poll interval gets
//     408 and dropped), plus the keep-alive idle timeout;
//   * overload protection: a global connection cap — excess connections
//     are shed with an immediate 503 + Retry-After and never buffered, so
//     a flood cannot grow server memory — and an optional per-IP
//     token-bucket rate limiter that answers 429 + Retry-After without
//     running the handler;
//   * a malformed request gets a 400 and the connection is closed — the
//     server never crashes on hostile bytes (tests/net/http_server_test.cc
//     and tests/net/event_loop_test.cc throw garbage at a live socket).
//
// Server shape: a single readiness-driven epoll event loop owns every
// socket (non-blocking accept, per-connection read-head → read-body →
// handle → write → keep-alive/close state machines, deadline sweeps), and
// a small worker pool runs only the CPU-bound handler work. Workers hand
// results back to the loop through an eventfd-signalled completion queue
// — the loop thread is the only thread that ever touches a connection's
// socket, so ten thousand idle keep-alive connections cost one epoll set,
// not ten thousand blocked threads.
//
// Handlers complete through a `Responder`: either one buffered
// `Send(response)`, or `BeginStream()`/`Write()`/`End()` for long-lived
// streaming responses (SSE). A Responder may be copied out of the handler
// and completed later from any thread — that is how long-poll endpoints
// park a request until an event arrives. Streamed bytes are buffered per
// connection up to `max_stream_buffer_bytes`; a consumer slower than its
// producer overflows the buffer and is disconnected (it re-attaches and
// resumes from its cursor — bounded memory, at-least-once delivery).
//
// Stop() aborts in-flight connections; Drain() is the graceful variant:
// stop accepting, let in-flight requests finish (their response carries
// Connection: close), shut idle keep-alive connections and live streams,
// and only hard-stop when the drain deadline expires.
//
// The client (`HttpConnection`) keeps one connection alive across
// round-trips and transparently reconnects once when a kept-alive socket
// turns out to be stale (the server or a proxy closed it between requests).
// Every transport failure carries the errno text and the phase it happened
// in, and `sent_on_wire` tells retrying callers whether the request may
// have reached the peer.

#ifndef VCHAIN_NET_HTTP_H_
#define VCHAIN_NET_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace vchain::net {

struct HttpRequest {
  std::string method;  ///< "GET" / "POST" (upper-case)
  std::string path;    ///< target before '?', e.g. "/query"
  std::map<std::string, std::string> query;    ///< decoded ?key=value params
  std::map<std::string, std::string> headers;  ///< lower-cased field names
  std::string body;
  /// The request's correlation id: the client's X-Request-Id when it sent
  /// one, else generated at dispatch. Echoed on the response, stamped (via
  /// logging::ScopedRequestId) on every log line the handler emits.
  std::string request_id;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/octet-stream";
  std::vector<std::pair<std::string, std::string>> headers;  ///< extras
  std::string body;
};

const char* HttpReasonPhrase(int status);

/// Strict decimal u64: digits only, max 20 chars, overflow-checked. Shared
/// by the request parser, the /headers query params, and the client's
/// response-header parsing so the accepted grammar cannot drift.
bool ParseDecimalU64(std::string_view s, uint64_t* out);

/// Monotonic counters of the server's availability machinery (all events
/// since the registry's counters were created). Snapshot via
/// HttpServer::stats() — the values are read back from the same
/// metrics::Registry counters `GET /metrics` exposes, so the two can never
/// drift. Servers sharing one registry (the Default()) share counters.
struct HttpServerStats {
  uint64_t accepted = 0;       ///< connections admitted to the event loop
  uint64_t requests = 0;       ///< requests dispatched to the handler
  uint64_t shed_overload = 0;  ///< connections answered 503 at accept
  uint64_t rate_limited = 0;   ///< requests answered 429
  uint64_t timed_out = 0;      ///< connections dropped for slow progress (408)
  uint64_t active_connections = 0;  ///< open connections right now
};

class IpRateLimiter;
struct ResponderCore;

/// Completion handle for one request. Exactly one of Send() or
/// BeginStream() wins (later calls are ignored); a Responder dropped
/// without completing answers 500 so a buggy route can never leak a
/// connection. Copyable and thread-safe: any copy may complete the
/// request from any thread, which is how long-poll routes park a request
/// past handler return. All operations are no-ops after the peer
/// disconnects or the server stops — poll alive() to stop producing.
class Responder {
 public:
  Responder() = default;  ///< inert; Send/Write are no-ops

  /// Complete with one buffered response. First completion wins.
  void Send(HttpResponse resp) const;

  /// Switch the connection to streaming: writes the response head
  /// (Connection: close, no Content-Length — the stream is close-
  /// delimited) and leaves the connection open for Write(). Returns false
  /// when another completion already won or the connection is gone.
  bool BeginStream(
      int status, const std::string& content_type,
      std::vector<std::pair<std::string, std::string>> headers = {}) const;

  /// Queue stream bytes. False when the connection is gone or the
  /// per-connection stream buffer is full (slow consumer) — stop writing.
  bool Write(std::string_view chunk) const;

  /// Finish the stream; the connection closes once buffered bytes flush.
  void End() const;

  /// True while the connection is open and the server is running.
  bool alive() const;

  /// The request's correlation id (also in HttpRequest::request_id).
  const std::string& request_id() const;

 private:
  friend class HttpServer;
  explicit Responder(std::shared_ptr<ResponderCore> core)
      : core_(std::move(core)) {}
  std::shared_ptr<ResponderCore> core_;
};

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  ///< 0 = ephemeral; read the chosen one from port()
    /// Handler worker pool size. Only `Service::Query`-style CPU work runs
    /// here; all socket I/O stays on the event loop.
    size_t num_threads = 4;
    size_t max_body_bytes = 8u << 20;
    /// Inactivity timeout: a connection idle this long between requests
    /// (or stalled mid-write) is dropped. <= 0 disables.
    int recv_timeout_seconds = 10;

    // --- overload protection -------------------------------------------------
    /// Hard cap on connections the event loop holds at once. Connections
    /// beyond it are shed with 503 + Retry-After at accept time, so a
    /// flood can never grow server memory.
    size_t max_connections = 64;
    /// Kept for compatibility with the worker-pool transport: the event
    /// loop has no accept queue (requests queue per-connection), so this
    /// no longer gates admission — max_connections is the only cap.
    size_t accept_queue = 16;
    /// Per-IP sustained requests/second; 0 disables rate limiting.
    double rate_limit_rps = 0;
    /// Token-bucket burst per IP; 0 -> max(rate_limit_rps, 1).
    double rate_limit_burst = 0;

    // --- slow-loris protection -----------------------------------------------
    /// Once the first head byte arrives, the full request head must arrive
    /// within this budget (408 otherwise). 0 disables.
    int header_timeout_seconds = 5;
    /// Budget for the request body after the head (408 otherwise). 0
    /// disables.
    int body_timeout_seconds = 10;

    // --- streaming -----------------------------------------------------------
    /// Per-connection cap on stream bytes buffered ahead of a slow
    /// consumer; overflow disconnects the stream (the subscriber resumes
    /// from its cursor — backpressure by redelivery, never by memory).
    size_t max_stream_buffer_bytes = 256u << 10;

    /// Registry the server's counters/histograms live in; null = the
    /// process-wide metrics::Registry::Default(). Tests inject their own
    /// for isolated assertions.
    metrics::Registry* registry = nullptr;
  };

  /// Synchronous route: return one buffered response.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Asynchronous route: complete (now or later, from any thread) through
  /// the Responder.
  using AsyncHandler = std::function<void(const HttpRequest&, Responder)>;

  /// Bind, listen, and spin up the event loop + worker pool. InvalidArgument
  /// for a bad bind address, Internal for socket errors (port in use, ...).
  static Result<std::unique_ptr<HttpServer>> Start(Options options,
                                                   AsyncHandler handler);
  /// Sync adapter: wraps `handler` so existing buffered routes run
  /// unchanged on the event loop.
  static Result<std::unique_ptr<HttpServer>> Start(Options options,
                                                   Handler handler);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Hard stop: abort in-flight connections and join all threads.
  void Stop();

  /// Graceful stop: close the listener, finish in-flight requests (their
  /// responses carry Connection: close), shut idle keep-alive connections
  /// and live streams, and join. Falls back to Stop() when work is still
  /// in flight after `timeout_seconds`. Idempotent with Stop(); safe to
  /// call once from any thread.
  void Drain(int timeout_seconds = 10);

  uint16_t port() const { return port_; }
  HttpServerStats stats() const;

  static constexpr size_t kMaxHeadBytes = 16u << 10;
  static constexpr size_t kMaxHeaderCount = 64;
  static constexpr size_t kMaxTargetBytes = 2048;

 private:
  friend struct ResponderCore;
  struct Loop;    ///< event-loop state: epoll set, connection table
  struct Shared;  ///< completion + job queues shared with workers/Responders

  HttpServer(Options options, AsyncHandler handler);
  void LoopMain();
  void WorkerMain();
  void CountResponseClass(int status);

  Options options_;
  AsyncHandler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::unique_ptr<IpRateLimiter> limiter_;
  std::unique_ptr<Loop> loop_;
  std::shared_ptr<Shared> shared_;

  std::atomic<size_t> held_connections_{0};  ///< open connections
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  // Availability counters live in the metrics registry (one source of
  // truth for stats() and /metrics); held_connections_ above stays the
  // admission-control variable and is mirrored into active_connections_.
  metrics::Counter* n_accepted_ = nullptr;
  metrics::Counter* n_requests_ = nullptr;
  metrics::Counter* n_shed_ = nullptr;
  metrics::Counter* n_rate_limited_ = nullptr;
  metrics::Counter* n_timed_out_ = nullptr;
  metrics::Counter* n_status_2xx_ = nullptr;
  metrics::Counter* n_status_3xx_ = nullptr;
  metrics::Counter* n_status_4xx_ = nullptr;
  metrics::Counter* n_status_5xx_ = nullptr;
  metrics::Gauge* active_connections_ = nullptr;
  metrics::Histogram* request_seconds_ = nullptr;
};

/// Client side: one persistent connection, lazily (re)established.
class HttpConnection {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    size_t max_response_bytes = 256u << 20;
    int recv_timeout_seconds = 60;
    /// Budget for establishing the TCP connection (nonblocking connect +
    /// poll). 0 = the OS default.
    int connect_timeout_seconds = 10;
  };

  explicit HttpConnection(Options options) : options_(std::move(options)) {}
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// One request/response exchange. Internal on connect/transport failure
  /// (message carries the errno text and phase), Corruption when the
  /// peer's response violates the protocol subset.
  ///
  /// `sent_on_wire` (optional): set true once any request byte may have
  /// reached the peer on a *fresh* connection — the signal a retrying
  /// caller uses to gate non-idempotent requests. (A send on a reused
  /// keep-alive connection that the server already closed is retried
  /// internally; that cannot double-deliver, since the peer never read it.)
  /// `extra_headers` (optional) are appended verbatim to the request head
  /// — how callers propagate X-Request-Id and opt into X-Vchain-Trace.
  /// Field names must be token-safe; values must be CR/LF-free.
  Result<HttpResponse> RoundTrip(
      const std::string& method, const std::string& target,
      std::string_view body, const std::string& content_type,
      bool* sent_on_wire = nullptr,
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

 private:
  Status Connect();
  Status SendAll(std::string_view data);

  Options options_;
  int fd_ = -1;
};

}  // namespace vchain::net

#endif  // VCHAIN_NET_HTTP_H_

// Dependency-free HTTP/1.1 transport for the SP wire protocol.
//
// Deliberately a *subset* of HTTP/1.1 — exactly what an SP deployment
// behind a loopback, LAN, or reverse proxy needs, with every limit
// explicit so a hostile peer can neither exhaust memory nor wedge a
// worker:
//
//   * GET/POST, request head capped (kMaxHeadBytes), header count capped,
//     target length capped, bare-LF and obs-fold rejected;
//   * bodies require Content-Length (Transfer-Encoding is answered 501 —
//     chunked parsing is attack surface the protocol doesn't need);
//   * per-connection inactivity timeout (SO_RCVTIMEO) so a stalled peer
//     frees its worker; keep-alive honored until either side says close;
//   * a malformed request gets a 400 and the connection is closed — the
//     server never crashes on hostile bytes (tests/net/http_server_test.cc
//     throws garbage at a live socket).
//
// Server shape: one listening socket, `num_threads` workers all blocked in
// accept(2) (the kernel load-balances), each serving one connection at a
// time to completion. The SP's work per request is proving, not I/O — a
// handful of workers saturates the CPU, and there is no event-loop state
// machine to audit. Stop() shuts the listener and any in-flight
// connections down and joins the workers.
//
// The client (`HttpConnection`) keeps one connection alive across
// round-trips and transparently reconnects once when a kept-alive socket
// turns out to be stale (the server or a proxy closed it between requests).

#ifndef VCHAIN_NET_HTTP_H_
#define VCHAIN_NET_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/status.h"

namespace vchain::net {

struct HttpRequest {
  std::string method;  ///< "GET" / "POST" (upper-case)
  std::string path;    ///< target before '?', e.g. "/query"
  std::map<std::string, std::string> query;    ///< decoded ?key=value params
  std::map<std::string, std::string> headers;  ///< lower-cased field names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/octet-stream";
  std::vector<std::pair<std::string, std::string>> headers;  ///< extras
  std::string body;
};

const char* HttpReasonPhrase(int status);

/// Strict decimal u64: digits only, max 20 chars, overflow-checked. Shared
/// by the request parser, the /headers query params, and the client's
/// response-header parsing so the accepted grammar cannot drift.
bool ParseDecimalU64(std::string_view s, uint64_t* out);

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  ///< 0 = ephemeral; read the chosen one from port()
    size_t num_threads = 4;
    size_t max_body_bytes = 8u << 20;
    /// Per-recv inactivity timeout; a peer silent this long is dropped.
    int recv_timeout_seconds = 10;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Bind, listen, and spin up the worker threads. InvalidArgument for a
  /// bad bind address, Internal for socket errors (port in use, ...).
  static Result<std::unique_ptr<HttpServer>> Start(Options options,
                                                   Handler handler);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void Stop();
  uint16_t port() const { return port_; }

  static constexpr size_t kMaxHeadBytes = 16u << 10;
  static constexpr size_t kMaxHeaderCount = 64;
  static constexpr size_t kMaxTargetBytes = 2048;

 private:
  HttpServer(Options options, Handler handler);
  void WorkerLoop(size_t worker_index);
  void ServeConnection(int fd);

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::vector<std::thread> workers_;
  std::vector<int> active_fds_;  // one slot per worker; -1 = idle
  std::mutex active_mu_;
  std::atomic<bool> stopping_{false};
};

/// Client side: one persistent connection, lazily (re)established.
class HttpConnection {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    size_t max_response_bytes = 256u << 20;
    int recv_timeout_seconds = 60;
  };

  explicit HttpConnection(Options options) : options_(std::move(options)) {}
  ~HttpConnection();
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// One request/response exchange. Internal on connect/transport failure,
  /// Corruption when the peer's response violates the protocol subset.
  Result<HttpResponse> RoundTrip(const std::string& method,
                                 const std::string& target,
                                 std::string_view body,
                                 const std::string& content_type);

 private:
  Status Connect();
  Status SendAll(std::string_view data);

  Options options_;
  int fd_ = -1;
};

}  // namespace vchain::net

#endif  // VCHAIN_NET_HTTP_H_

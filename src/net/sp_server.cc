#include "net/sp_server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/flight_recorder.h"
#include "common/log.h"
#include "net/wire.h"

namespace vchain::net {

namespace {

HttpResponse TextResponse(int status, std::string body) {
  return {.status = status,
          .content_type = "text/plain",
          .body = std::move(body)};
}

HttpResponse ErrorResponse(const Status& st) {
  return TextResponse(HttpStatusFor(st), st.ToString() + "\n");
}

HttpResponse EventFrameResponse(const api::SubscriptionEventBatch& batch) {
  HttpResponse resp;
  Bytes frame = EncodeEventFrame(batch);
  resp.body.assign(frame.begin(), frame.end());
  return resp;
}

/// One SSE record per notification: the event's height as the record id (a
/// reconnecting client resumes with cursor = last id + 1), the canonical
/// bytes base64-inside `data:` — text framing never touches the proof
/// encoding.
std::string SseRecord(const api::SubscriptionEvent& ev) {
  std::string out = "id: " + std::to_string(ev.height) + "\ndata: ";
  out += Base64Encode(
      ByteSpan(ev.notification_bytes.data(), ev.notification_bytes.size()));
  out += "\n\n";
  return out;
}

/// Per-route request counters, one labeled child per endpoint. Registered
/// once per process against the default registry (route names are fixed, so
/// a single static table is enough even with several servers).
metrics::Counter* RouteCounter(const char* route) {
  return metrics::Registry::Default().GetCounter(
      "vchain_http_route_requests_total", "Requests dispatched, by endpoint",
      {{"route", route}});
}

bool TraceRequested(const HttpRequest& req) {
  auto it = req.headers.find("x-vchain-trace");
  return it != req.headers.end() && it->second == "1";
}

}  // namespace

/// The subscriber parking lot. A GET /events request with nothing to send
/// does not hold a worker thread: its Responder is parked here and one hub
/// thread completes it when Service::Append bumps the tip (listener →
/// OnAppend), its long-poll wait expires, or the server shuts down. SSE
/// waiters stay parked across deliveries until the client disconnects.
struct SpServer::EventHub {
  struct Waiter {
    Responder responder;
    uint32_t id = 0;
    uint64_t cursor = 0;
    size_t max_events = 64;
    bool sse = false;
    uint64_t deadline_ns = 0;  ///< long-poll completion deadline (0 for SSE)
  };

  explicit EventHub(api::Service* service) : service(service) {
    thread = std::thread([this] { Run(); });
  }
  ~EventHub() { Shutdown(); }

  /// Append listener: cheap flag + wake, called on the mining thread.
  void OnAppend() {
    {
      std::lock_guard<std::mutex> lock(mu);
      dirty = true;
    }
    cv.notify_all();
  }

  void Park(Waiter w) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!stop) {
        waiters.push_back(std::move(w));
        cv.notify_all();
        return;
      }
    }
    // Shut down between dispatch and park: complete inline.
    Step(&w, metrics::MonotonicNanos(), /*tip_advanced=*/true, /*final=*/true);
  }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stop = true;
    }
    cv.notify_all();
    if (thread.joinable()) thread.join();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu);
    while (!stop) {
      // 50ms tick bounds deadline latency; dirty/stop wake immediately.
      cv.wait_for(lock, std::chrono::milliseconds(50),
                  [this] { return stop || dirty; });
      if (stop) break;
      const bool tip_advanced = dirty;
      dirty = false;
      if (waiters.empty()) continue;
      std::vector<Waiter> work(std::make_move_iterator(waiters.begin()),
                               std::make_move_iterator(waiters.end()));
      waiters.clear();
      lock.unlock();
      const uint64_t now = metrics::MonotonicNanos();
      std::vector<Waiter> keep;
      for (Waiter& w : work) {
        if (!Step(&w, now, tip_advanced, /*final=*/false)) {
          keep.push_back(std::move(w));
        }
      }
      lock.lock();
      for (Waiter& w : keep) waiters.push_back(std::move(w));
    }
    std::vector<Waiter> work(std::make_move_iterator(waiters.begin()),
                             std::make_move_iterator(waiters.end()));
    waiters.clear();
    lock.unlock();
    const uint64_t now = metrics::MonotonicNanos();
    for (Waiter& w : work) {
      Step(&w, now, /*tip_advanced=*/true, /*final=*/true);
    }
  }

  /// Advance one waiter; true = complete (responded, stream ended, or the
  /// client went away). `final` forces completion (shutdown/drain).
  bool Step(Waiter* w, uint64_t now, bool tip_advanced, bool final) {
    if (!w->responder.alive()) return true;
    const bool expired =
        !w->sse && w->deadline_ns != 0 && now >= w->deadline_ns;
    if (!tip_advanced && !expired && !final) return false;
    if (w->sse) {
      // Pump everything available; the per-connection stream buffer cap is
      // the backpressure valve (overflow drops the connection, the client
      // reconnects with its last id and the service redelivers).
      for (;;) {
        auto batch = service->EventsSince(w->id, w->cursor, w->max_events);
        if (!batch.ok()) {  // unsubscribed (or service gone): end the stream
          w->responder.End();
          return true;
        }
        if (batch.value().events.empty()) break;
        std::string out;
        for (const api::SubscriptionEvent& ev : batch.value().events) {
          out += SseRecord(ev);
        }
        if (!w->responder.Write(out)) return true;  // overflow or closed
        w->cursor = batch.value().next_cursor;
      }
      if (final) {
        w->responder.End();
        return true;
      }
      return false;
    }
    auto batch = service->EventsSince(w->id, w->cursor, w->max_events);
    if (!batch.ok()) {
      w->responder.Send(ErrorResponse(batch.status()));
      return true;
    }
    if (!batch.value().events.empty() || expired || final) {
      w->responder.Send(EventFrameResponse(batch.value()));
      return true;
    }
    return false;
  }

  api::Service* service;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Waiter> waiters;
  bool dirty = false;
  bool stop = false;
  std::thread thread;
};

SpServer::SpServer() = default;

Result<std::unique_ptr<SpServer>> SpServer::Start(api::Service* service,
                                                  Options options) {
  if (service == nullptr) {
    return Status::InvalidArgument("SpServer requires a service");
  }
  std::unique_ptr<SpServer> server(new SpServer());
  server->service_ = service;
  server->options_ = options;
  // Export the service's observable state as gauges, refreshed at scrape
  // time. The collector holds a raw Service pointer, so it is removed in
  // Stop/Drain/~SpServer — all of which precede the service's death per the
  // Start() contract (service must outlive the server).
  server->registry_ = options.http.registry != nullptr
                          ? options.http.registry
                          : &metrics::Registry::Default();
  {
    metrics::Registry& r = *server->registry_;
    metrics::Gauge* blocks =
        r.GetGauge("vchain_service_blocks", "Chain height (sealed blocks)");
    metrics::Gauge* degraded = r.GetGauge(
        "vchain_service_degraded",
        "1 once a storage fault forced read-only mode, else 0");
    metrics::Gauge* subs = r.GetGauge("vchain_service_subscriptions_active",
                                      "Standing queries registered");
    metrics::Gauge* sub_pending =
        r.GetGauge("vchain_service_subscription_events_pending",
                   "Buffered, undrained subscription events");
    metrics::Gauge* pc_hits =
        r.GetGauge("vchain_service_proof_cache_lru_hits",
                   "Lifetime hits of the shared disjointness-proof cache");
    metrics::Gauge* pc_misses =
        r.GetGauge("vchain_service_proof_cache_lru_misses",
                   "Lifetime misses of the shared disjointness-proof cache");
    metrics::Gauge* bc_hits =
        r.GetGauge("vchain_service_block_cache_hits",
                   "Lifetime hits of the decoded-block cache");
    metrics::Gauge* bc_misses =
        r.GetGauge("vchain_service_block_cache_misses",
                   "Lifetime misses of the decoded-block cache");
    metrics::Gauge* trace_ring =
        r.GetGauge("vchain_service_trace_ring_occupancy",
                   "Span trees retained for GET /debug/traces");
    metrics::Gauge* flight_seq =
        r.GetGauge("vchain_service_flight_recorder_seq",
                   "Events ever recorded by the process flight recorder");
    api::Service* svc = service;
    server->collector_id_ = r.AddCollector([=] {
      api::ServiceStats s = svc->Stats();
      blocks->Set(static_cast<double>(s.num_blocks));
      degraded->Set(s.degraded ? 1 : 0);
      subs->Set(static_cast<double>(s.subscriptions_active));
      sub_pending->Set(static_cast<double>(s.subscription_events_pending));
      pc_hits->Set(static_cast<double>(s.proof_cache.hits));
      pc_misses->Set(static_cast<double>(s.proof_cache.misses));
      bc_hits->Set(static_cast<double>(s.block_cache.hits));
      bc_misses->Set(static_cast<double>(s.block_cache.misses));
      trace_ring->Set(static_cast<double>(s.trace_ring_occupancy));
      flight_seq->Set(static_cast<double>(s.flight_recorder_seq));
    });
    server->collector_registered_ = true;
  }
  // Hub before transport: the first request may park on it. The listener
  // holds a raw hub pointer, so ShutdownHub always detaches it first.
  server->hub_ = std::make_unique<EventHub>(service);
  service->SetSubscriptionListener(
      [hub = server->hub_.get()](uint64_t) { hub->OnAppend(); });
  auto http = HttpServer::Start(
      options.http, [srv = server.get()](const HttpRequest& req,
                                         Responder responder) {
        srv->Handle(req, std::move(responder));
      });
  if (!http.ok()) {
    server->ShutdownHub();
    server->RemoveCollector();
    return http.status();
  }
  server->http_ = http.TakeValue();
  return server;
}

SpServer::~SpServer() {
  ShutdownHub();
  RemoveCollector();
}

void SpServer::Stop() {
  ShutdownHub();
  http_->Stop();
  RemoveCollector();
}

Status SpServer::Drain(int timeout_seconds) {
  // Complete parked subscribers first — they hold live connections the
  // transport's drain would otherwise wait out.
  ShutdownHub();
  http_->Drain(timeout_seconds);
  RemoveCollector();
  return service_->Sync();
}

void SpServer::ShutdownHub() {
  if (hub_ == nullptr) return;
  service_->SetSubscriptionListener(nullptr);
  hub_->Shutdown();
}

void SpServer::RemoveCollector() {
  if (collector_registered_) {
    registry_->RemoveCollector(collector_id_);
    collector_registered_ = false;
  }
}

void SpServer::Handle(const HttpRequest& req, Responder responder) {
  if (req.path == "/events") {
    HandleEvents(req, std::move(responder));
    return;
  }
  responder.Send(HandleSync(req));
}

void SpServer::HandleEvents(const HttpRequest& req, Responder responder) {
  static metrics::Counter* n = RouteCounter("/events");
  n->Inc();
  if (req.method != "GET") {
    responder.Send(TextResponse(405, "use GET\n"));
    return;
  }
  uint64_t id64 = 0;
  uint64_t cursor = 0;
  uint64_t max64 = 64;
  uint64_t wait_ms = 0;
  auto id_it = req.query.find("id");
  if (id_it == req.query.end() || !ParseDecimalU64(id_it->second, &id64) ||
      id64 > UINT32_MAX) {
    responder.Send(TextResponse(400, "id must be an unsigned integer\n"));
    return;
  }
  auto param = [&req](const char* key, uint64_t* out) {
    auto it = req.query.find(key);
    if (it == req.query.end()) return true;  // optional
    return ParseDecimalU64(it->second, out);
  };
  if (!param("cursor", &cursor) || !param("max", &max64) ||
      !param("wait_ms", &wait_ms)) {
    responder.Send(
        TextResponse(400, "cursor/max/wait_ms must be unsigned integers\n"));
    return;
  }
  const uint32_t id = static_cast<uint32_t>(id64);
  const size_t max_events = static_cast<size_t>(
      std::clamp<uint64_t>(max64, 1, kMaxWireEventsPerFrame));
  wait_ms = std::min(wait_ms, options_.max_events_wait_ms);
  auto accept = req.headers.find("accept");
  const bool sse = accept != req.headers.end() &&
                   accept->second.find("text/event-stream") != std::string::npos;

  // First look is inline: unknown ids 404 immediately and a ready batch
  // answers without ever touching the hub.
  auto batch = service_->EventsSince(id, cursor, max_events);
  if (!batch.ok()) {
    responder.Send(ErrorResponse(batch.status()));
    return;
  }
  if (sse) {
    if (!responder.BeginStream(200, "text/event-stream",
                               {{"Cache-Control", "no-cache"}})) {
      return;
    }
    responder.Write("retry: 1000\n\n");
    std::string out;
    for (const api::SubscriptionEvent& ev : batch.value().events) {
      out += SseRecord(ev);
    }
    if (!out.empty() && !responder.Write(out)) return;
    hub_->Park({std::move(responder), id, batch.value().next_cursor,
                max_events, /*sse=*/true, /*deadline_ns=*/0});
    return;
  }
  if (!batch.value().events.empty() || wait_ms == 0) {
    responder.Send(EventFrameResponse(batch.value()));
    return;
  }
  hub_->Park({std::move(responder), id, batch.value().next_cursor, max_events,
              /*sse=*/false,
              metrics::MonotonicNanos() + wait_ms * 1000000ull});
}

HttpResponse SpServer::HandleSync(const HttpRequest& req) const {
  if (req.path == "/healthz") {
    static metrics::Counter* n = RouteCounter("/healthz");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    Status health = service_->Health();
    HttpResponse resp =
        health.ok() ? TextResponse(200, "ok\n")
                    : TextResponse(HttpStatusFor(health),
                                   "degraded: " + health.message() + "\n");
    resp.headers.emplace_back("X-Vchain-Engine",
                              api::EngineKindName(service_->engine_kind()));
    return resp;
  }

  if (req.path == "/stats") {
    static metrics::Counter* n = RouteCounter("/stats");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = StatsToJson(service_->Stats());
    return resp;
  }

  if (req.path == "/metrics") {
    static metrics::Counter* n = RouteCounter("/metrics");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = registry_->WriteText();
    return resp;
  }

  if (req.path == "/headers") {
    static metrics::Counter* n = RouteCounter("/headers");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    uint64_t tip = service_->NumBlocks();
    uint64_t from = 0;
    uint64_t to = tip == 0 ? 0 : tip - 1;
    auto param = [&req](const char* key, uint64_t* out) {
      auto it = req.query.find(key);
      if (it == req.query.end()) return true;  // optional
      return ParseDecimalU64(it->second, out);
    };
    if (!param("from", &from) || !param("to", &to)) {
      return TextResponse(400, "from/to must be unsigned integers\n");
    }
    // Cap the page; the client pages forward from its own height. Compare
    // via `to - from` (never overflows for to >= from) — `to - from + 1`
    // wraps to 0 for the full u64 range and would skip the clamp.
    uint64_t cap = std::max<size_t>(1, options_.max_headers_per_page);
    cap = std::min<uint64_t>(cap, kMaxWireHeadersPerPage);
    if (to >= from && to - from > cap - 1) to = from + cap - 1;
    auto headers = service_->Headers(from, to);
    if (!headers.ok()) return ErrorResponse(headers.status());
    HttpResponse resp;
    Bytes frame = EncodeHeaderPage(headers.value());
    resp.body.assign(frame.begin(), frame.end());
    resp.headers.emplace_back("X-Vchain-Tip", std::to_string(tip));
    return resp;
  }

  if (req.path == "/query") {
    static metrics::Counter* n = RouteCounter("/query");
    n->Inc();
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    return HandleQuery(req);
  }

  if (req.path == "/query_batch") {
    static metrics::Counter* n = RouteCounter("/query_batch");
    n->Inc();
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    auto queries = BatchRequestFromJson(req.body);
    if (!queries.ok()) return ErrorResponse(queries.status());
    auto results = service_->QueryBatch(queries.value());
    std::vector<WireBatchItem> items;
    items.reserve(results.size());
    for (auto& r : results) {
      WireBatchItem item;
      if (r.ok()) {
        item.response_bytes = std::move(r.value().response_bytes);
      } else {
        item.status = r.status();
      }
      items.push_back(std::move(item));
    }
    HttpResponse resp;
    Bytes frame = EncodeBatchResponse(items);
    resp.body.assign(frame.begin(), frame.end());
    return resp;
  }

  if (req.path == "/subscribe") {
    static metrics::Counter* n = RouteCounter("/subscribe");
    n->Inc();
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    auto query = SubscribeRequestFromJson(req.body);
    if (!query.ok()) return ErrorResponse(query.status());
    // Cursor read before Subscribe so it can only err low — the first
    // /events poll may see a block the subscription doesn't cover yet, and
    // EventsSince clamps to the true start.
    const uint64_t cursor = service_->NumBlocks();
    auto id = service_->Subscribe(query.value());
    if (!id.ok()) return ErrorResponse(id.status());
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = SubscribeResponseToJson({id.value(), cursor});
    return resp;
  }

  if (req.path == "/unsubscribe") {
    static metrics::Counter* n = RouteCounter("/unsubscribe");
    n->Inc();
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    auto id = UnsubscribeRequestFromJson(req.body);
    if (!id.ok()) return ErrorResponse(id.status());
    Status st = service_->Unsubscribe(id.value());
    if (!st.ok()) return ErrorResponse(st);
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = "{\"ok\":true}";
    return resp;
  }

  if (req.path == "/debug/traces" || req.path == "/debug/events" ||
      req.path == "/debug/config") {
    // Disabled = indistinguishable from an unknown route: the debug plane
    // must not change the public surface or leak its existence.
    if (!options_.debug_endpoints) {
      return TextResponse(404, "unknown endpoint\n");
    }
    static metrics::Counter* n = RouteCounter("/debug");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    HttpResponse resp;
    resp.content_type = "application/json";
    if (req.path == "/debug/traces") {
      resp.body = service_->DebugTracesJson();
    } else if (req.path == "/debug/events") {
      resp.body = flight::FlightRecorder::Get().ToJson();
    } else {
      resp.body = service_->DebugConfigJson();
    }
    return resp;
  }

  return TextResponse(404, "unknown endpoint\n");
}

HttpResponse SpServer::HandleQuery(const HttpRequest& req) const {
  auto query = QueryFromJson(req.body);
  if (!query.ok()) return ErrorResponse(query.status());
  // Always collect the trace — Service stage-times every query anyway, so
  // this only decides whether the breakdown also rides a response header.
  // The body stays the canonical response bytes verbatim either way.
  core::QueryTrace trace;
  auto result = service_->Query(query.value(), &trace);
  if (options_.slow_query_ms > 0 && result.ok() &&
      trace.total_ns >= options_.slow_query_ms * 1000000ull) {
    logging::Warn("slow_query")
        .Kv("total_ms", static_cast<double>(trace.total_ns) * 1e-6)
        .Kv("prove_ms", static_cast<double>(trace.prove_ns) * 1e-6)
        .Kv("walk_ms", static_cast<double>(trace.match_walk_ns) * 1e-6)
        .Kv("aggregate_ms", static_cast<double>(trace.aggregate_ns) * 1e-6)
        .Kv("blocks_walked", trace.blocks_walked)
        .Kv("results", trace.results_matched)
        .Kv("cache_hits", trace.proof_cache_hits)
        .Kv("cache_misses", trace.proof_cache_misses)
        .Kv("spans", trace.spans != nullptr ? trace.spans->NumSpans() : 0);
  }
  if (!result.ok()) return ErrorResponse(result.status());
  HttpResponse resp;
  resp.body.assign(result.value().response_bytes.begin(),
                   result.value().response_bytes.end());
  resp.headers.emplace_back("X-Vchain-Engine",
                            api::EngineKindName(service_->engine_kind()));
  resp.headers.emplace_back("X-Vchain-Vo-Bytes",
                            std::to_string(result.value().vo_bytes));
  resp.headers.emplace_back("X-Vchain-Results",
                            std::to_string(result.value().objects.size()));
  if (TraceRequested(req)) {
    resp.headers.emplace_back("X-Vchain-Trace", trace.ToJson());
  }
  return resp;
}

}  // namespace vchain::net

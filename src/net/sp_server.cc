#include "net/sp_server.h"

#include <algorithm>

#include "net/wire.h"

namespace vchain::net {

namespace {

HttpResponse TextResponse(int status, std::string body) {
  return {.status = status,
          .content_type = "text/plain",
          .body = std::move(body)};
}

HttpResponse ErrorResponse(const Status& st) {
  return TextResponse(HttpStatusFor(st), st.ToString() + "\n");
}

}  // namespace

Result<std::unique_ptr<SpServer>> SpServer::Start(api::Service* service,
                                                  Options options) {
  if (service == nullptr) {
    return Status::InvalidArgument("SpServer requires a service");
  }
  std::unique_ptr<SpServer> server(new SpServer());
  server->service_ = service;
  server->options_ = options;
  auto http = HttpServer::Start(
      options.http,
      [srv = server.get()](const HttpRequest& req) { return srv->Handle(req); });
  if (!http.ok()) return http.status();
  server->http_ = http.TakeValue();
  return server;
}

HttpResponse SpServer::Handle(const HttpRequest& req) const {
  if (req.path == "/healthz") {
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    Status health = service_->Health();
    HttpResponse resp =
        health.ok() ? TextResponse(200, "ok\n")
                    : TextResponse(HttpStatusFor(health),
                                   "degraded: " + health.message() + "\n");
    resp.headers.emplace_back("X-Vchain-Engine",
                              api::EngineKindName(service_->engine_kind()));
    return resp;
  }

  if (req.path == "/stats") {
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = StatsToJson(service_->Stats());
    return resp;
  }

  if (req.path == "/headers") {
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    uint64_t tip = service_->NumBlocks();
    uint64_t from = 0;
    uint64_t to = tip == 0 ? 0 : tip - 1;
    auto param = [&req](const char* key, uint64_t* out) {
      auto it = req.query.find(key);
      if (it == req.query.end()) return true;  // optional
      return ParseDecimalU64(it->second, out);
    };
    if (!param("from", &from) || !param("to", &to)) {
      return TextResponse(400, "from/to must be unsigned integers\n");
    }
    // Cap the page; the client pages forward from its own height. Compare
    // via `to - from` (never overflows for to >= from) — `to - from + 1`
    // wraps to 0 for the full u64 range and would skip the clamp.
    uint64_t cap = std::max<size_t>(1, options_.max_headers_per_page);
    cap = std::min<uint64_t>(cap, kMaxWireHeadersPerPage);
    if (to >= from && to - from > cap - 1) to = from + cap - 1;
    auto headers = service_->Headers(from, to);
    if (!headers.ok()) return ErrorResponse(headers.status());
    HttpResponse resp;
    Bytes frame = EncodeHeaderPage(headers.value());
    resp.body.assign(frame.begin(), frame.end());
    resp.headers.emplace_back("X-Vchain-Tip", std::to_string(tip));
    return resp;
  }

  if (req.path == "/query") {
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    auto query = QueryFromJson(req.body);
    if (!query.ok()) return ErrorResponse(query.status());
    auto result = service_->Query(query.value());
    if (!result.ok()) return ErrorResponse(result.status());
    HttpResponse resp;
    resp.body.assign(result.value().response_bytes.begin(),
                     result.value().response_bytes.end());
    resp.headers.emplace_back("X-Vchain-Engine",
                              api::EngineKindName(service_->engine_kind()));
    resp.headers.emplace_back("X-Vchain-Vo-Bytes",
                              std::to_string(result.value().vo_bytes));
    resp.headers.emplace_back(
        "X-Vchain-Results", std::to_string(result.value().objects.size()));
    return resp;
  }

  if (req.path == "/query_batch") {
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    auto queries = BatchRequestFromJson(req.body);
    if (!queries.ok()) return ErrorResponse(queries.status());
    auto results = service_->QueryBatch(queries.value());
    std::vector<WireBatchItem> items;
    items.reserve(results.size());
    for (auto& r : results) {
      WireBatchItem item;
      if (r.ok()) {
        item.response_bytes = std::move(r.value().response_bytes);
      } else {
        item.status = r.status();
      }
      items.push_back(std::move(item));
    }
    HttpResponse resp;
    Bytes frame = EncodeBatchResponse(items);
    resp.body.assign(frame.begin(), frame.end());
    return resp;
  }

  return TextResponse(404, "unknown endpoint\n");
}

}  // namespace vchain::net

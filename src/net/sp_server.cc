#include "net/sp_server.h"

#include <algorithm>

#include "common/flight_recorder.h"
#include "common/log.h"
#include "net/wire.h"

namespace vchain::net {

namespace {

HttpResponse TextResponse(int status, std::string body) {
  return {.status = status,
          .content_type = "text/plain",
          .body = std::move(body)};
}

HttpResponse ErrorResponse(const Status& st) {
  return TextResponse(HttpStatusFor(st), st.ToString() + "\n");
}

/// Per-route request counters, one labeled child per endpoint. Registered
/// once per process against the default registry (route names are fixed, so
/// a single static table is enough even with several servers).
metrics::Counter* RouteCounter(const char* route) {
  return metrics::Registry::Default().GetCounter(
      "vchain_http_route_requests_total", "Requests dispatched, by endpoint",
      {{"route", route}});
}

bool TraceRequested(const HttpRequest& req) {
  auto it = req.headers.find("x-vchain-trace");
  return it != req.headers.end() && it->second == "1";
}

}  // namespace

Result<std::unique_ptr<SpServer>> SpServer::Start(api::Service* service,
                                                  Options options) {
  if (service == nullptr) {
    return Status::InvalidArgument("SpServer requires a service");
  }
  std::unique_ptr<SpServer> server(new SpServer());
  server->service_ = service;
  server->options_ = options;
  // Export the service's observable state as gauges, refreshed at scrape
  // time. The collector holds a raw Service pointer, so it is removed in
  // Stop/Drain/~SpServer — all of which precede the service's death per the
  // Start() contract (service must outlive the server).
  server->registry_ = options.http.registry != nullptr
                          ? options.http.registry
                          : &metrics::Registry::Default();
  {
    metrics::Registry& r = *server->registry_;
    metrics::Gauge* blocks =
        r.GetGauge("vchain_service_blocks", "Chain height (sealed blocks)");
    metrics::Gauge* degraded = r.GetGauge(
        "vchain_service_degraded",
        "1 once a storage fault forced read-only mode, else 0");
    metrics::Gauge* subs = r.GetGauge("vchain_service_subscriptions_active",
                                      "Standing queries registered");
    metrics::Gauge* sub_pending =
        r.GetGauge("vchain_service_subscription_events_pending",
                   "Buffered, undrained subscription events");
    metrics::Gauge* pc_hits =
        r.GetGauge("vchain_service_proof_cache_lru_hits",
                   "Lifetime hits of the shared disjointness-proof cache");
    metrics::Gauge* pc_misses =
        r.GetGauge("vchain_service_proof_cache_lru_misses",
                   "Lifetime misses of the shared disjointness-proof cache");
    metrics::Gauge* bc_hits =
        r.GetGauge("vchain_service_block_cache_hits",
                   "Lifetime hits of the decoded-block cache");
    metrics::Gauge* bc_misses =
        r.GetGauge("vchain_service_block_cache_misses",
                   "Lifetime misses of the decoded-block cache");
    metrics::Gauge* trace_ring =
        r.GetGauge("vchain_service_trace_ring_occupancy",
                   "Span trees retained for GET /debug/traces");
    metrics::Gauge* flight_seq =
        r.GetGauge("vchain_service_flight_recorder_seq",
                   "Events ever recorded by the process flight recorder");
    api::Service* svc = service;
    server->collector_id_ = r.AddCollector([=] {
      api::ServiceStats s = svc->Stats();
      blocks->Set(static_cast<double>(s.num_blocks));
      degraded->Set(s.degraded ? 1 : 0);
      subs->Set(static_cast<double>(s.subscriptions_active));
      sub_pending->Set(static_cast<double>(s.subscription_events_pending));
      pc_hits->Set(static_cast<double>(s.proof_cache.hits));
      pc_misses->Set(static_cast<double>(s.proof_cache.misses));
      bc_hits->Set(static_cast<double>(s.block_cache.hits));
      bc_misses->Set(static_cast<double>(s.block_cache.misses));
      trace_ring->Set(static_cast<double>(s.trace_ring_occupancy));
      flight_seq->Set(static_cast<double>(s.flight_recorder_seq));
    });
    server->collector_registered_ = true;
  }
  auto http = HttpServer::Start(
      options.http,
      [srv = server.get()](const HttpRequest& req) { return srv->Handle(req); });
  if (!http.ok()) {
    server->RemoveCollector();
    return http.status();
  }
  server->http_ = http.TakeValue();
  return server;
}

SpServer::~SpServer() { RemoveCollector(); }

void SpServer::RemoveCollector() {
  if (collector_registered_) {
    registry_->RemoveCollector(collector_id_);
    collector_registered_ = false;
  }
}

HttpResponse SpServer::Handle(const HttpRequest& req) const {
  if (req.path == "/healthz") {
    static metrics::Counter* n = RouteCounter("/healthz");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    Status health = service_->Health();
    HttpResponse resp =
        health.ok() ? TextResponse(200, "ok\n")
                    : TextResponse(HttpStatusFor(health),
                                   "degraded: " + health.message() + "\n");
    resp.headers.emplace_back("X-Vchain-Engine",
                              api::EngineKindName(service_->engine_kind()));
    return resp;
  }

  if (req.path == "/stats") {
    static metrics::Counter* n = RouteCounter("/stats");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = StatsToJson(service_->Stats());
    return resp;
  }

  if (req.path == "/metrics") {
    static metrics::Counter* n = RouteCounter("/metrics");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = registry_->WriteText();
    return resp;
  }

  if (req.path == "/headers") {
    static metrics::Counter* n = RouteCounter("/headers");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    uint64_t tip = service_->NumBlocks();
    uint64_t from = 0;
    uint64_t to = tip == 0 ? 0 : tip - 1;
    auto param = [&req](const char* key, uint64_t* out) {
      auto it = req.query.find(key);
      if (it == req.query.end()) return true;  // optional
      return ParseDecimalU64(it->second, out);
    };
    if (!param("from", &from) || !param("to", &to)) {
      return TextResponse(400, "from/to must be unsigned integers\n");
    }
    // Cap the page; the client pages forward from its own height. Compare
    // via `to - from` (never overflows for to >= from) — `to - from + 1`
    // wraps to 0 for the full u64 range and would skip the clamp.
    uint64_t cap = std::max<size_t>(1, options_.max_headers_per_page);
    cap = std::min<uint64_t>(cap, kMaxWireHeadersPerPage);
    if (to >= from && to - from > cap - 1) to = from + cap - 1;
    auto headers = service_->Headers(from, to);
    if (!headers.ok()) return ErrorResponse(headers.status());
    HttpResponse resp;
    Bytes frame = EncodeHeaderPage(headers.value());
    resp.body.assign(frame.begin(), frame.end());
    resp.headers.emplace_back("X-Vchain-Tip", std::to_string(tip));
    return resp;
  }

  if (req.path == "/query") {
    static metrics::Counter* n = RouteCounter("/query");
    n->Inc();
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    return HandleQuery(req);
  }

  if (req.path == "/query_batch") {
    static metrics::Counter* n = RouteCounter("/query_batch");
    n->Inc();
    if (req.method != "POST") return TextResponse(405, "use POST\n");
    auto queries = BatchRequestFromJson(req.body);
    if (!queries.ok()) return ErrorResponse(queries.status());
    auto results = service_->QueryBatch(queries.value());
    std::vector<WireBatchItem> items;
    items.reserve(results.size());
    for (auto& r : results) {
      WireBatchItem item;
      if (r.ok()) {
        item.response_bytes = std::move(r.value().response_bytes);
      } else {
        item.status = r.status();
      }
      items.push_back(std::move(item));
    }
    HttpResponse resp;
    Bytes frame = EncodeBatchResponse(items);
    resp.body.assign(frame.begin(), frame.end());
    return resp;
  }

  if (req.path == "/debug/traces" || req.path == "/debug/events" ||
      req.path == "/debug/config") {
    // Disabled = indistinguishable from an unknown route: the debug plane
    // must not change the public surface or leak its existence.
    if (!options_.debug_endpoints) {
      return TextResponse(404, "unknown endpoint\n");
    }
    static metrics::Counter* n = RouteCounter("/debug");
    n->Inc();
    if (req.method != "GET") return TextResponse(405, "use GET\n");
    HttpResponse resp;
    resp.content_type = "application/json";
    if (req.path == "/debug/traces") {
      resp.body = service_->DebugTracesJson();
    } else if (req.path == "/debug/events") {
      resp.body = flight::FlightRecorder::Get().ToJson();
    } else {
      resp.body = service_->DebugConfigJson();
    }
    return resp;
  }

  return TextResponse(404, "unknown endpoint\n");
}

HttpResponse SpServer::HandleQuery(const HttpRequest& req) const {
  auto query = QueryFromJson(req.body);
  if (!query.ok()) return ErrorResponse(query.status());
  // Always collect the trace — Service stage-times every query anyway, so
  // this only decides whether the breakdown also rides a response header.
  // The body stays the canonical response bytes verbatim either way.
  core::QueryTrace trace;
  auto result = service_->Query(query.value(), &trace);
  if (options_.slow_query_ms > 0 && result.ok() &&
      trace.total_ns >= options_.slow_query_ms * 1000000ull) {
    logging::Warn("slow_query")
        .Kv("total_ms", static_cast<double>(trace.total_ns) * 1e-6)
        .Kv("prove_ms", static_cast<double>(trace.prove_ns) * 1e-6)
        .Kv("walk_ms", static_cast<double>(trace.match_walk_ns) * 1e-6)
        .Kv("aggregate_ms", static_cast<double>(trace.aggregate_ns) * 1e-6)
        .Kv("blocks_walked", trace.blocks_walked)
        .Kv("results", trace.results_matched)
        .Kv("cache_hits", trace.proof_cache_hits)
        .Kv("cache_misses", trace.proof_cache_misses)
        .Kv("spans", trace.spans != nullptr ? trace.spans->NumSpans() : 0);
  }
  if (!result.ok()) return ErrorResponse(result.status());
  HttpResponse resp;
  resp.body.assign(result.value().response_bytes.begin(),
                   result.value().response_bytes.end());
  resp.headers.emplace_back("X-Vchain-Engine",
                            api::EngineKindName(service_->engine_kind()));
  resp.headers.emplace_back("X-Vchain-Vo-Bytes",
                            std::to_string(result.value().vo_bytes));
  resp.headers.emplace_back("X-Vchain-Results",
                            std::to_string(result.value().objects.size()));
  if (TraceRequested(req)) {
    resp.headers.emplace_back("X-Vchain-Trace", trace.ToJson());
  }
  return resp;
}

}  // namespace vchain::net

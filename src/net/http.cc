#include "net/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <random>
#include <unordered_map>

#include "common/flight_recorder.h"
#include "common/log.h"

namespace vchain::net {

namespace {

using Clock = std::chrono::steady_clock;

/// 16 hex chars, unique within the process and unlikely to collide across
/// processes: a random per-process prefix XOR-mixed with a sequence
/// number. Not a secret — just a correlation id.
std::string GenerateRequestId() {
  static const uint64_t prefix = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
           static_cast<uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count());
  }();
  static std::atomic<uint64_t> seq{0};
  uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  // splitmix64 finalizer: consecutive ids don't share prefixes.
  uint64_t z = prefix + n * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(z));
  return buf;
}

/// A client-supplied id is echoed into a response header and log records:
/// clamp the length and drop anything that could smuggle CR/LF or break
/// the key=value log grammar.
std::string SanitizeRequestId(std::string_view id) {
  std::string out;
  out.reserve(std::min<size_t>(id.size(), 64));
  for (char c : id) {
    if (out.size() >= 64) break;
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
              (c >= 'A' && c <= 'Z') || c == '-' || c == '_' || c == '.';
    if (ok) out += c;
  }
  return out.empty() ? GenerateRequestId() : out;
}

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

void SetRecvTimeoutMs(int fd, int64_t ms) {
  if (ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void SetSendTimeoutMs(int fd, int64_t ms) {
  if (ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

enum class RecvOutcome { kData, kEof, kTimeout, kError };

/// Append more bytes from `fd` into `buf`. On kError, `*err` holds errno.
RecvOutcome RecvMore(int fd, std::string* buf, int* err = nullptr) {
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf->append(chunk, static_cast<size_t>(n));
      return RecvOutcome::kData;
    }
    if (n == 0) return RecvOutcome::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvOutcome::kTimeout;
    if (err != nullptr) *err = errno;
    return RecvOutcome::kError;
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c <= 0x20 || c >= 0x7F || c == ':') return false;
  }
  return true;
}

bool HexNibble(char c, uint8_t* out) {
  if (c >= '0' && c <= '9') {
    *out = static_cast<uint8_t>(c - '0');
  } else if (c >= 'a' && c <= 'f') {
    *out = static_cast<uint8_t>(c - 'a' + 10);
  } else if (c >= 'A' && c <= 'F') {
    *out = static_cast<uint8_t>(c - 'A' + 10);
  } else {
    return false;
  }
  return true;
}

bool PercentDecode(std::string_view in, std::string* out) {
  out->clear();
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '%') {
      uint8_t hi, lo;
      if (i + 2 >= in.size() || !HexNibble(in[i + 1], &hi) ||
          !HexNibble(in[i + 2], &lo)) {
        return false;
      }
      out->push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+') {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

/// Split "path?a=1&b=2" into path + decoded query map; false when malformed.
bool ParseTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* query) {
  if (target.empty() || target[0] != '/' ||
      target.size() > HttpServer::kMaxTargetBytes) {
    return false;
  }
  for (unsigned char c : target) {
    if (c <= 0x20 || c == 0x7F) return false;
  }
  size_t qpos = target.find('?');
  std::string_view raw_path =
      qpos == std::string_view::npos ? target : target.substr(0, qpos);
  if (!PercentDecode(raw_path, path)) return false;
  if (qpos == std::string_view::npos) return true;
  std::string_view qs = target.substr(qpos + 1);
  while (!qs.empty()) {
    size_t amp = qs.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? qs : qs.substr(0, amp);
    qs = amp == std::string_view::npos ? std::string_view{}
                                       : qs.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string key, value;
    if (!PercentDecode(pair.substr(0, eq == std::string_view::npos ? pair.size()
                                                                   : eq),
                       &key)) {
      return false;
    }
    if (eq != std::string_view::npos &&
        !PercentDecode(pair.substr(eq + 1), &value)) {
      return false;
    }
    (*query)[key] = value;
  }
  return true;
}

struct ParsedHead {
  HttpRequest request;
  size_t content_length = 0;
  bool keep_alive = true;
  bool has_transfer_encoding = false;
};

/// Parse one request head (everything before the blank line). nullopt =
/// protocol violation (the caller answers 400 and closes).
std::optional<ParsedHead> ParseRequestHead(std::string_view head) {
  ParsedHead out;
  size_t line_end = head.find(kCrlf);
  if (line_end == std::string_view::npos) return std::nullopt;
  std::string_view request_line = head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return std::nullopt;
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(method)) return std::nullopt;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return std::nullopt;
  out.keep_alive = version == "HTTP/1.1";
  out.request.method = std::string(method);
  if (!ParseTarget(target, &out.request.path, &out.request.query)) {
    return std::nullopt;
  }

  std::string_view rest = head.substr(line_end + 2);
  size_t header_count = 0;
  bool have_content_length = false;
  while (!rest.empty()) {
    size_t eol = rest.find(kCrlf);
    if (eol == std::string_view::npos) return std::nullopt;
    std::string_view line = rest.substr(0, eol);
    rest = rest.substr(eol + 2);
    if (line.empty()) break;
    // obs-fold (leading whitespace continuation) is an RFC 7230 MUST NOT.
    if (line[0] == ' ' || line[0] == '\t') return std::nullopt;
    if (++header_count > HttpServer::kMaxHeaderCount) return std::nullopt;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) return std::nullopt;
    std::string key = ToLower(name);
    std::string value(Trim(line.substr(colon + 1)));
    if (key == "content-length") {
      uint64_t v = 0;
      // Duplicate or malformed Content-Length is a classic smuggling vector.
      if (have_content_length || !ParseDecimalU64(value, &v)) return std::nullopt;
      have_content_length = true;
      out.content_length = v;
    } else if (key == "transfer-encoding") {
      out.has_transfer_encoding = true;
    } else if (key == "connection") {
      std::string lower = ToLower(value);
      if (lower == "close") out.keep_alive = false;
      if (lower == "keep-alive") out.keep_alive = true;
    }
    out.request.headers[key] = std::move(value);
  }
  return out;
}

std::string SerializeResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    HttpReasonPhrase(resp.status);
  out += kCrlf;
  out += "Content-Type: " + resp.content_type;
  out += kCrlf;
  out += "Content-Length: " + std::to_string(resp.body.size());
  out += kCrlf;
  out += keep_alive ? "Connection: keep-alive" : "Connection: close";
  out += kCrlf;
  for (const auto& [name, value] : resp.headers) {
    out += name + ": " + value;
    out += kCrlf;
  }
  out += kCrlf;
  out += resp.body;
  return out;
}

bool SendAllFd(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

HttpResponse RetryLaterResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "text/plain";
  resp.body = std::move(body);
  resp.headers.emplace_back("Retry-After", "1");
  return resp;
}

Result<int> OpenClientSocket(const std::string& host, uint16_t port,
                             int recv_timeout_seconds,
                             int connect_timeout_seconds) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Internal("getaddrinfo " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  int last_err = ECONNREFUSED;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    bool connected = false;
    if (connect_timeout_seconds > 0) {
      // Nonblocking connect + poll so an unresponsive host costs a bounded
      // wait instead of the kernel's (minutes-long) SYN retry budget.
      int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      if (crc == 0) {
        connected = true;
      } else if (errno == EINPROGRESS) {
        struct pollfd p;
        p.fd = fd;
        p.events = POLLOUT;
        int prc = ::poll(&p, 1, connect_timeout_seconds * 1000);
        if (prc == 1) {
          int so_error = 0;
          socklen_t len = sizeof(so_error);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
          if (so_error == 0) {
            connected = true;
          } else {
            last_err = so_error;
          }
        } else {
          last_err = prc == 0 ? ETIMEDOUT : errno;
        }
      } else {
        last_err = errno;
      }
      if (connected) ::fcntl(fd, F_SETFL, flags);
    } else {
      connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0;
      if (!connected) last_err = errno;
    }
    if (connected) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status::Internal("connect to " + host + ":" + port_str +
                            " failed: " + std::strerror(last_err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetRecvTimeoutMs(fd, static_cast<int64_t>(recv_timeout_seconds) * 1000);
  return fd;
}

}  // namespace

bool ParseDecimalU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// --- per-IP token bucket -----------------------------------------------------

/// One token bucket per peer IPv4 address: `rps` sustained, `burst` peak.
/// The map is bounded — when it outgrows kMaxBuckets, buckets that have
/// refilled to full (idle peers) are purged.
class IpRateLimiter {
 public:
  IpRateLimiter(double rps, double burst)
      : rps_(rps), burst_(burst > 0 ? burst : std::max(rps, 1.0)) {}

  bool Allow(uint32_t ip) {
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    if (buckets_.size() > kMaxBuckets) Purge(now);
    auto [it, fresh] = buckets_.try_emplace(ip);
    Bucket& b = it->second;
    if (fresh) {
      b.tokens = burst_;
    } else {
      double dt = std::chrono::duration<double>(now - b.last).count();
      b.tokens = std::min(burst_, b.tokens + dt * rps_);
    }
    b.last = now;
    if (b.tokens < 1.0) return false;
    b.tokens -= 1.0;
    return true;
  }

 private:
  struct Bucket {
    double tokens = 0;
    Clock::time_point last{};
  };

  static constexpr size_t kMaxBuckets = 4096;

  void Purge(Clock::time_point now) {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      double dt = std::chrono::duration<double>(now - it->second.last).count();
      if (it->second.tokens + dt * rps_ >= burst_) {
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }

  const double rps_;
  const double burst_;
  std::mutex mu_;
  std::unordered_map<uint32_t, Bucket> buckets_;
};

// --- server ------------------------------------------------------------------

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  metrics::Registry& reg = options_.registry != nullptr
                               ? *options_.registry
                               : metrics::Registry::Default();
  n_accepted_ = reg.GetCounter("vchain_http_accepted_total",
                               "Connections admitted to a worker");
  n_requests_ = reg.GetCounter("vchain_http_requests_total",
                               "Requests dispatched to the handler");
  n_shed_ = reg.GetCounter("vchain_http_shed_total",
                           "Connections shed with 503 at accept");
  n_rate_limited_ = reg.GetCounter("vchain_http_rate_limited_total",
                                   "Requests answered 429 by the per-IP "
                                   "token bucket");
  n_timed_out_ = reg.GetCounter(
      "vchain_http_timeout_total",
      "Connections dropped for slow head/body progress (408)");
  const char* status_name = "vchain_http_responses_total";
  const char* status_help = "Responses by status class";
  n_status_2xx_ = reg.GetCounter(status_name, status_help, {{"class", "2xx"}});
  n_status_3xx_ = reg.GetCounter(status_name, status_help, {{"class", "3xx"}});
  n_status_4xx_ = reg.GetCounter(status_name, status_help, {{"class", "4xx"}});
  n_status_5xx_ = reg.GetCounter(status_name, status_help, {{"class", "5xx"}});
  active_connections_ =
      reg.GetGauge("vchain_http_active_connections",
                   "Connections held right now (queued + in service)");
  request_seconds_ = reg.GetLatencyHistogram(
      "vchain_http_request_seconds",
      "Handler wall time per dispatched request");
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(Options options,
                                                      Handler handler) {
  if (options.num_threads == 0) options.num_threads = 1;
  if (options.max_connections == 0) options.max_connections = 1;
  if (options.accept_queue == 0) options.accept_queue = 1;
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(options), std::move(handler)));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   server->options_.bind_address);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  if (server->options_.rate_limit_rps > 0) {
    server->limiter_ = std::make_unique<IpRateLimiter>(
        server->options_.rate_limit_rps, server->options_.rate_limit_burst);
  }
  server->slots_.assign(server->options_.num_threads, WorkerSlot{});
  for (size_t i = 0; i < server->options_.num_threads; ++i) {
    server->workers_.emplace_back(
        [srv = server.get(), i] { srv->WorkerLoop(i); });
  }
  server->accept_thread_ = std::thread([srv = server.get()] {
    srv->AcceptLoop();
  });
  return server;
}

HttpServer::~HttpServer() { Stop(); }

HttpServerStats HttpServer::stats() const {
  // Read back from the registry counters — the same cells /metrics
  // exposes — so the JSON stats endpoint and the Prometheus exposition
  // cannot disagree.
  HttpServerStats s;
  s.accepted = n_accepted_->Value();
  s.requests = n_requests_->Value();
  s.shed_overload = n_shed_->Value();
  s.rate_limited = n_rate_limited_->Value();
  s.timed_out = n_timed_out_->Value();
  s.active_connections = held_connections_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::JoinAll() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void HttpServer::Stop() {
  if (stopping_.exchange(true)) {
    JoinAll();
    return;
  }
  flight::FlightRecorder::Get().Record("http", "server_stop", port_);
  // Unblock the accept thread, then any in-flight recv().
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    for (const WorkerSlot& slot : slots_) {
      if (slot.fd >= 0) ::shutdown(slot.fd, SHUT_RDWR);
    }
  }
  queue_cv_.notify_all();
  JoinAll();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (const PendingConn& conn : queue_) ::close(conn.fd);
    queue_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::Drain(int timeout_seconds) {
  if (draining_.exchange(true) || stopping_.load(std::memory_order_relaxed)) {
    Stop();  // second caller (or raced with Stop): fall through to hard stop
    return;
  }
  flight::FlightRecorder::Get().Record("http", "server_drain", port_);
  // 1. Refuse new connections.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // 2. Shut idle keep-alive connections; their workers wake from recv(),
  //    see draining_, and exit. Workers mid-request finish and answer with
  //    Connection: close on their own.
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    for (const WorkerSlot& slot : slots_) {
      if (slot.fd >= 0 && !slot.in_request) ::shutdown(slot.fd, SHUT_RD);
    }
  }
  queue_cv_.notify_all();
  // 3. Wait for in-flight work to complete, then hard-stop to join.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(timeout_seconds);
  while (held_connections_.load(std::memory_order_acquire) > 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Stop();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed) &&
         !draining_.load(std::memory_order_relaxed)) {
    struct sockaddr_in peer;
    socklen_t peer_len = sizeof(peer);
    int fd = ::accept(listen_fd_, reinterpret_cast<struct sockaddr*>(&peer),
                      &peer_len);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed) ||
          draining_.load(std::memory_order_relaxed)) {
        break;
      }
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint32_t ip =
        peer.sin_family == AF_INET ? ntohl(peer.sin_addr.s_addr) : 0;

    // Admission control: the server never holds more than max_connections
    // sockets (in service + queued) and the queue itself is bounded, so
    // a connection flood is shed at the door instead of growing memory.
    bool admitted = false;
    if (held_connections_.load(std::memory_order_acquire) <
        options_.max_connections) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() < options_.accept_queue) {
        queue_.push_back(PendingConn{fd, ip});
        size_t held =
            held_connections_.fetch_add(1, std::memory_order_acq_rel) + 1;
        active_connections_->Set(static_cast<double>(held));
        n_accepted_->Inc();
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
      continue;
    }
    n_shed_->Inc();
    flight::FlightRecorder::Get().Record(
        "http", "shed_503", held_connections_.load(std::memory_order_relaxed));
    // Bounded-time best-effort 503 so well-behaved clients back off;
    // SO_SNDTIMEO keeps a hostile peer from wedging the accept thread.
    SetSendTimeoutMs(fd, 1000);
    SendAllFd(fd, SerializeResponse(
                      RetryLaterResponse(503, "server overloaded\n"),
                      /*keep_alive=*/false));
    ::close(fd);
  }
}

void HttpServer::WorkerLoop(size_t worker_index) {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) ||
               draining_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping or drained dry
      conn = queue_.front();
      queue_.pop_front();
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(conn.fd);
      size_t held =
          held_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      active_connections_->Set(static_cast<double>(held));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      slots_[worker_index] = WorkerSlot{conn.fd, false};
    }
    // Stop() sets stopping_ *before* sweeping the slots. If its sweep ran
    // between our pop and the registration above, it missed this fd — but
    // then this load observes stopping_ == true and we shut the connection
    // down ourselves instead of blocking in recv().
    if (stopping_.load(std::memory_order_seq_cst)) {
      ::shutdown(conn.fd, SHUT_RDWR);
    }
    ServeConnection(conn.fd, conn.peer_ip, worker_index);
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      slots_[worker_index] = WorkerSlot{};
    }
    ::close(conn.fd);
    size_t held =
        held_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    active_connections_->Set(static_cast<double>(held));
  }
}

void HttpServer::ServeConnection(int fd, uint32_t peer_ip,
                                 size_t worker_index) {
  auto mark_in_request = [this, fd, worker_index](bool in_request) {
    std::lock_guard<std::mutex> lock(active_mu_);
    slots_[worker_index] = WorkerSlot{fd, in_request};
  };
  // Receive into `buf` under a phase deadline; no deadline (nullopt) means
  // the plain keep-alive idle timeout.
  auto recv_phase =
      [this, fd](std::string* buf,
                 const std::optional<Clock::time_point>& deadline)
      -> RecvOutcome {
    int64_t ms = static_cast<int64_t>(options_.recv_timeout_seconds) * 1000;
    if (deadline.has_value()) {
      int64_t remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                              *deadline - Clock::now())
                              .count();
      if (remaining <= 0) return RecvOutcome::kTimeout;
      ms = ms > 0 ? std::min(ms, remaining) : remaining;
    }
    SetRecvTimeoutMs(fd, ms);
    return RecvMore(fd, buf);
  };
  auto answer = [fd](int status, std::string body, bool keep_alive) {
    return SendAllFd(
        fd, SerializeResponse({.status = status,
                               .content_type = "text/plain",
                               .body = std::move(body)},
                              keep_alive));
  };

  std::string buf;
  while (!stopping_.load(std::memory_order_relaxed)) {
    mark_in_request(!buf.empty());

    // 1. Read the request head. The idle wait for the first byte runs on
    // the keep-alive timeout; once anything arrives the header progress
    // deadline starts — a slow-loris peer trickling header bytes gets 408
    // instead of holding the worker for recv_timeout per byte.
    std::optional<Clock::time_point> head_deadline;
    if (!buf.empty() && options_.header_timeout_seconds > 0) {
      head_deadline =
          Clock::now() + std::chrono::seconds(options_.header_timeout_seconds);
    }
    size_t head_end;
    while ((head_end = buf.find(kHeadEnd)) == std::string::npos) {
      if (buf.size() > kMaxHeadBytes) {
        answer(400, "request head too large\n", false);
        return;
      }
      bool idle = buf.empty();
      RecvOutcome out = recv_phase(&buf, head_deadline);
      if (out == RecvOutcome::kData) {
        if (idle) {
          mark_in_request(true);
          if (options_.header_timeout_seconds > 0) {
            head_deadline = Clock::now() + std::chrono::seconds(
                                               options_.header_timeout_seconds);
          }
        }
        continue;
      }
      if (out == RecvOutcome::kTimeout && !idle) {
        n_timed_out_->Inc();
        flight::FlightRecorder::Get().Record("http", "timeout_408_head");
        answer(408, "timed out reading request head\n", false);
      }
      return;  // idle timeout, EOF, error, or Stop()
    }
    auto parsed = ParseRequestHead(std::string_view(buf).substr(
        0, head_end + kHeadEnd.size()));
    if (!parsed) {
      answer(400, "malformed request\n", false);
      return;
    }
    if (parsed->has_transfer_encoding) {
      answer(501, "transfer-encoding not supported\n", false);
      return;
    }
    if (parsed->content_length > options_.max_body_bytes) {
      answer(413, "body too large\n", false);
      return;
    }

    // 2. Read the body under its own progress deadline.
    std::optional<Clock::time_point> body_deadline;
    if (options_.body_timeout_seconds > 0) {
      body_deadline =
          Clock::now() + std::chrono::seconds(options_.body_timeout_seconds);
    }
    size_t total = head_end + kHeadEnd.size() + parsed->content_length;
    while (buf.size() < total) {
      RecvOutcome out = recv_phase(&buf, body_deadline);
      if (out == RecvOutcome::kData) continue;
      if (out == RecvOutcome::kTimeout) {
        n_timed_out_->Inc();
        flight::FlightRecorder::Get().Record("http", "timeout_408_body");
        answer(408, "timed out reading request body\n", false);
      }
      return;
    }
    parsed->request.body =
        buf.substr(head_end + kHeadEnd.size(), parsed->content_length);
    buf.erase(0, total);  // keep any pipelined next request

    const bool keep_alive =
        parsed->keep_alive && !draining_.load(std::memory_order_relaxed);

    // 3. Per-IP rate limit — answered before the handler runs, so a
    // flooding client costs parsing, not proving. Keep-alive is preserved:
    // a well-behaved client backs off and reuses the connection.
    if (limiter_ != nullptr && !limiter_->Allow(peer_ip)) {
      n_rate_limited_->Inc();
      flight::FlightRecorder::Get().Record("http", "rate_limited_429");
      if (!SendAllFd(fd,
                     SerializeResponse(
                         RetryLaterResponse(429, "rate limit exceeded\n"),
                         keep_alive))) {
        return;
      }
      if (!keep_alive) return;
      continue;
    }

    // 4. Dispatch; a throwing handler is a programming error upstream, but
    // answering 500 beats tearing down the whole server.
    n_requests_->Inc();
    // Correlation id: honor the client's X-Request-Id, else mint one. The
    // id is echoed on the response and made ambient for every log line the
    // handler emits (thread-local; one request per worker at a time).
    auto rid_it = parsed->request.headers.find("x-request-id");
    parsed->request.request_id =
        rid_it != parsed->request.headers.end() && !rid_it->second.empty()
            ? SanitizeRequestId(rid_it->second)
            : GenerateRequestId();
    HttpResponse resp;
    {
      logging::ScopedRequestId rid_scope(parsed->request.request_id);
      metrics::ScopedTimer timer(request_seconds_);
      try {
        resp = handler_(parsed->request);
      } catch (...) {
        resp = {.status = 500,
                .content_type = "text/plain",
                .body = "internal error\n"};
      }
    }
    resp.headers.emplace_back("X-Request-Id", parsed->request.request_id);
    if (resp.status >= 500) {
      n_status_5xx_->Inc();
    } else if (resp.status >= 400) {
      n_status_4xx_->Inc();
    } else if (resp.status >= 300) {
      n_status_3xx_->Inc();
    } else {
      n_status_2xx_->Inc();
    }
    if (!SendAllFd(fd, SerializeResponse(resp, keep_alive))) return;
    if (!keep_alive) return;
  }
}

// --- client ------------------------------------------------------------------

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Status HttpConnection::Connect() {
  if (fd_ >= 0) return Status::OK();
  auto fd = OpenClientSocket(options_.host, options_.port,
                             options_.recv_timeout_seconds,
                             options_.connect_timeout_seconds);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  return Status::OK();
}

Status HttpConnection::SendAll(std::string_view data) {
  if (!SendAllFd(fd_, data)) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    return Status::Internal("send to " + options_.host + ":" +
                            std::to_string(options_.port) +
                            " failed: " + std::strerror(err));
  }
  return Status::OK();
}

Result<HttpResponse> HttpConnection::RoundTrip(
    const std::string& method, const std::string& target,
    std::string_view body, const std::string& content_type,
    bool* sent_on_wire,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  if (sent_on_wire != nullptr) *sent_on_wire = false;
  const std::string peer =
      options_.host + ":" + std::to_string(options_.port);
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + peer + "\r\n";
  request += "Content-Type: " + content_type + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Connection: keep-alive\r\n\r\n";
  request.append(body.data(), body.size());

  // A kept-alive socket may have been closed by the peer since the last
  // round-trip; retry the whole exchange once on a fresh connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool reused = fd_ >= 0;
    VCHAIN_RETURN_IF_ERROR(Connect());
    if (sent_on_wire != nullptr) *sent_on_wire = true;
    {
      Status sent = SendAll(request);
      if (!sent.ok()) {
        if (reused) continue;  // stale keep-alive; one fresh retry
        return sent;
      }
    }

    std::string buf;
    size_t head_end;
    Status recv_failure = Status::OK();
    while ((head_end = buf.find(kHeadEnd)) == std::string::npos) {
      if (buf.size() > HttpServer::kMaxHeadBytes) {
        return Status::Corruption("response head too large");
      }
      int err = 0;
      RecvOutcome out = RecvMore(fd_, &buf, &err);
      if (out == RecvOutcome::kData) continue;
      if (out == RecvOutcome::kTimeout) {
        recv_failure = Status::Internal(
            "recv from " + peer + " timed out after " +
            std::to_string(options_.recv_timeout_seconds) + "s");
      } else if (out == RecvOutcome::kError) {
        recv_failure = Status::Internal("recv from " + peer +
                                        " failed: " + std::strerror(err));
      } else {
        recv_failure = Status::Internal("connection to " + peer +
                                        " closed by peer mid-response");
      }
      break;
    }
    if (!recv_failure.ok()) {
      bool clean_early_close = buf.empty();
      ::close(fd_);
      fd_ = -1;
      // A reused connection the server closed before sending anything is a
      // stale keep-alive, not a failure — retry once on a fresh socket.
      if (reused && clean_early_close) continue;
      return recv_failure;
    }

    std::string_view head = std::string_view(buf).substr(0, head_end);
    size_t line_end = head.find(kCrlf);
    std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
      return Status::Corruption("malformed status line");
    }
    uint64_t status_code = 0;
    if (!ParseDecimalU64(status_line.substr(9, 3), &status_code)) {
      return Status::Corruption("malformed status code");
    }

    HttpResponse resp;
    resp.status = static_cast<int>(status_code);
    size_t content_length = 0;
    bool have_length = false;
    bool keep_alive = true;
    std::string_view rest = head.substr(
        line_end == std::string_view::npos ? head.size() : line_end + 2);
    while (!rest.empty()) {
      size_t eol = rest.find(kCrlf);
      std::string_view line =
          eol == std::string_view::npos ? rest : rest.substr(0, eol);
      rest = eol == std::string_view::npos ? std::string_view{}
                                           : rest.substr(eol + 2);
      if (line.empty()) continue;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Status::Corruption("malformed response header");
      }
      std::string key = ToLower(line.substr(0, colon));
      std::string value(Trim(line.substr(colon + 1)));
      if (key == "content-length") {
        uint64_t v = 0;
        if (have_length || !ParseDecimalU64(value, &v) ||
            v > options_.max_response_bytes) {
          return Status::Corruption("bad content-length");
        }
        have_length = true;
        content_length = v;
      } else if (key == "content-type") {
        resp.content_type = value;
      } else if (key == "connection") {
        if (ToLower(value) == "close") keep_alive = false;
      } else {
        resp.headers.emplace_back(std::move(key), std::move(value));
      }
    }
    if (!have_length) {
      return Status::Corruption("response without content-length");
    }

    size_t total = head_end + kHeadEnd.size() + content_length;
    while (buf.size() < total) {
      int err = 0;
      RecvOutcome out = RecvMore(fd_, &buf, &err);
      if (out == RecvOutcome::kData) continue;
      ::close(fd_);
      fd_ = -1;
      if (out == RecvOutcome::kTimeout) {
        return Status::Internal(
            "recv from " + peer + " timed out after " +
            std::to_string(options_.recv_timeout_seconds) +
            "s mid-body");
      }
      if (out == RecvOutcome::kError) {
        return Status::Internal("recv from " + peer +
                                " failed mid-body: " + std::strerror(err));
      }
      return Status::Internal("connection to " + peer +
                              " closed by peer mid-body");
    }
    resp.body = buf.substr(head_end + kHeadEnd.size(), content_length);
    if (!keep_alive) {
      ::close(fd_);
      fd_ = -1;
    }
    return resp;
  }
  return Status::Internal("request to " + peer + " failed after reconnect");
}

}  // namespace vchain::net

#include "net/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <random>
#include <unordered_map>

#include "common/flight_recorder.h"
#include "common/log.h"

namespace vchain::net {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// 16 hex chars, unique within the process and unlikely to collide across
/// processes: a random per-process prefix XOR-mixed with a sequence
/// number. Not a secret — just a correlation id.
std::string GenerateRequestId() {
  static const uint64_t prefix = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
           static_cast<uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count());
  }();
  static std::atomic<uint64_t> seq{0};
  uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  // splitmix64 finalizer: consecutive ids don't share prefixes.
  uint64_t z = prefix + n * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(z));
  return buf;
}

/// A client-supplied id is echoed into a response header and log records:
/// clamp the length and drop anything that could smuggle CR/LF or break
/// the key=value log grammar.
std::string SanitizeRequestId(std::string_view id) {
  std::string out;
  out.reserve(std::min<size_t>(id.size(), 64));
  for (char c : id) {
    if (out.size() >= 64) break;
    bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
              (c >= 'A' && c <= 'Z') || c == '-' || c == '_' || c == '.';
    if (ok) out += c;
  }
  return out.empty() ? GenerateRequestId() : out;
}

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

void SetRecvTimeoutMs(int fd, int64_t ms) {
  if (ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

enum class RecvOutcome { kData, kEof, kTimeout, kError };

/// Append more bytes from `fd` into `buf`. On kError, `*err` holds errno.
RecvOutcome RecvMore(int fd, std::string* buf, int* err = nullptr) {
  char chunk[4096];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf->append(chunk, static_cast<size_t>(n));
      return RecvOutcome::kData;
    }
    if (n == 0) return RecvOutcome::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvOutcome::kTimeout;
    if (err != nullptr) *err = errno;
    return RecvOutcome::kError;
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c <= 0x20 || c >= 0x7F || c == ':') return false;
  }
  return true;
}

bool HexNibble(char c, uint8_t* out) {
  if (c >= '0' && c <= '9') {
    *out = static_cast<uint8_t>(c - '0');
  } else if (c >= 'a' && c <= 'f') {
    *out = static_cast<uint8_t>(c - 'a' + 10);
  } else if (c >= 'A' && c <= 'F') {
    *out = static_cast<uint8_t>(c - 'A' + 10);
  } else {
    return false;
  }
  return true;
}

bool PercentDecode(std::string_view in, std::string* out) {
  out->clear();
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '%') {
      uint8_t hi, lo;
      if (i + 2 >= in.size() || !HexNibble(in[i + 1], &hi) ||
          !HexNibble(in[i + 2], &lo)) {
        return false;
      }
      out->push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+') {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

/// Split "path?a=1&b=2" into path + decoded query map; false when malformed.
bool ParseTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* query) {
  if (target.empty() || target[0] != '/' ||
      target.size() > HttpServer::kMaxTargetBytes) {
    return false;
  }
  for (unsigned char c : target) {
    if (c <= 0x20 || c == 0x7F) return false;
  }
  size_t qpos = target.find('?');
  std::string_view raw_path =
      qpos == std::string_view::npos ? target : target.substr(0, qpos);
  if (!PercentDecode(raw_path, path)) return false;
  if (qpos == std::string_view::npos) return true;
  std::string_view qs = target.substr(qpos + 1);
  while (!qs.empty()) {
    size_t amp = qs.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? qs : qs.substr(0, amp);
    qs = amp == std::string_view::npos ? std::string_view{}
                                       : qs.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string key, value;
    if (!PercentDecode(pair.substr(0, eq == std::string_view::npos ? pair.size()
                                                                   : eq),
                       &key)) {
      return false;
    }
    if (eq != std::string_view::npos &&
        !PercentDecode(pair.substr(eq + 1), &value)) {
      return false;
    }
    (*query)[key] = value;
  }
  return true;
}

struct ParsedHead {
  HttpRequest request;
  size_t content_length = 0;
  bool keep_alive = true;
  bool has_transfer_encoding = false;
};

/// Parse one request head (everything before the blank line). nullopt =
/// protocol violation (the caller answers 400 and closes).
std::optional<ParsedHead> ParseRequestHead(std::string_view head) {
  ParsedHead out;
  size_t line_end = head.find(kCrlf);
  if (line_end == std::string_view::npos) return std::nullopt;
  std::string_view request_line = head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return std::nullopt;
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(method)) return std::nullopt;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return std::nullopt;
  out.keep_alive = version == "HTTP/1.1";
  out.request.method = std::string(method);
  if (!ParseTarget(target, &out.request.path, &out.request.query)) {
    return std::nullopt;
  }

  std::string_view rest = head.substr(line_end + 2);
  size_t header_count = 0;
  bool have_content_length = false;
  while (!rest.empty()) {
    size_t eol = rest.find(kCrlf);
    if (eol == std::string_view::npos) return std::nullopt;
    std::string_view line = rest.substr(0, eol);
    rest = rest.substr(eol + 2);
    if (line.empty()) break;
    // obs-fold (leading whitespace continuation) is an RFC 7230 MUST NOT.
    if (line[0] == ' ' || line[0] == '\t') return std::nullopt;
    if (++header_count > HttpServer::kMaxHeaderCount) return std::nullopt;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) return std::nullopt;
    std::string key = ToLower(name);
    std::string value(Trim(line.substr(colon + 1)));
    if (key == "content-length") {
      uint64_t v = 0;
      // Duplicate or malformed Content-Length is a classic smuggling vector.
      if (have_content_length || !ParseDecimalU64(value, &v)) return std::nullopt;
      have_content_length = true;
      out.content_length = v;
    } else if (key == "transfer-encoding") {
      out.has_transfer_encoding = true;
    } else if (key == "connection") {
      std::string lower = ToLower(value);
      if (lower == "close") out.keep_alive = false;
      if (lower == "keep-alive") out.keep_alive = true;
    }
    out.request.headers[key] = std::move(value);
  }
  return out;
}

std::string SerializeResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    HttpReasonPhrase(resp.status);
  out += kCrlf;
  out += "Content-Type: " + resp.content_type;
  out += kCrlf;
  out += "Content-Length: " + std::to_string(resp.body.size());
  out += kCrlf;
  out += keep_alive ? "Connection: keep-alive" : "Connection: close";
  out += kCrlf;
  for (const auto& [name, value] : resp.headers) {
    out += name + ": " + value;
    out += kCrlf;
  }
  out += kCrlf;
  out += resp.body;
  return out;
}

/// Response head for a close-delimited stream: no Content-Length — bytes
/// flow until the server ends the stream and closes the connection.
std::string SerializeStreamHead(
    int status, const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>& extra,
    const std::string& request_id) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpReasonPhrase(status);
  out += kCrlf;
  out += "Content-Type: " + content_type;
  out += kCrlf;
  out += "Connection: close";
  out += kCrlf;
  for (const auto& [name, value] : extra) {
    out += name + ": " + value;
    out += kCrlf;
  }
  out += "X-Request-Id: " + request_id;
  out += kCrlf;
  out += kCrlf;
  return out;
}

bool SendAllFd(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

HttpResponse RetryLaterResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "text/plain";
  resp.body = std::move(body);
  resp.headers.emplace_back("Retry-After", "1");
  return resp;
}

Result<int> OpenClientSocket(const std::string& host, uint16_t port,
                             int recv_timeout_seconds,
                             int connect_timeout_seconds) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Internal("getaddrinfo " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  int last_err = ECONNREFUSED;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    bool connected = false;
    if (connect_timeout_seconds > 0) {
      // Nonblocking connect + poll so an unresponsive host costs a bounded
      // wait instead of the kernel's (minutes-long) SYN retry budget.
      int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
      if (crc == 0) {
        connected = true;
      } else if (errno == EINPROGRESS) {
        struct pollfd p;
        p.fd = fd;
        p.events = POLLOUT;
        int prc = ::poll(&p, 1, connect_timeout_seconds * 1000);
        if (prc == 1) {
          int so_error = 0;
          socklen_t len = sizeof(so_error);
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
          if (so_error == 0) {
            connected = true;
          } else {
            last_err = so_error;
          }
        } else {
          last_err = prc == 0 ? ETIMEDOUT : errno;
        }
      } else {
        last_err = errno;
      }
      if (connected) ::fcntl(fd, F_SETFL, flags);
    } else {
      connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0;
      if (!connected) last_err = errno;
    }
    if (connected) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status::Internal("connect to " + host + ":" + port_str +
                            " failed: " + std::strerror(last_err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetRecvTimeoutMs(fd, static_cast<int64_t>(recv_timeout_seconds) * 1000);
  return fd;
}

/// One connection's state machine. Owned (and only ever touched) by the
/// event-loop thread; workers reach it exclusively through the completion
/// queue keyed by `id`.
struct Conn {
  int fd = -1;
  uint64_t id = 0;
  uint32_t ip = 0;

  enum State { kReadHead, kReadBody, kHandling, kWrite, kStream };
  State state = kReadHead;

  std::string in;      ///< unparsed request bytes (may hold pipelined reqs)
  std::string out;     ///< response/stream bytes not yet on the wire
  size_t out_off = 0;  ///< how much of `out` has been sent
  bool close_after_write = false;
  bool want_write = false;  ///< EPOLLOUT currently armed
  bool peer_eof = false;    ///< peer half-closed; finish then close

  ParsedHead head;      ///< parse result while reading the body
  size_t head_len = 0;  ///< bytes of `in` covered by the head
  bool request_keep_alive = true;

  uint64_t deadline_ns = 0;  ///< 0 = no deadline armed
  enum Expiry { kSilentClose, k408Head, k408Body };
  Expiry expiry = kSilentClose;
  uint64_t head_start_ns = 0;  ///< first head byte (slow-loris budget anchor)
  uint64_t body_start_ns = 0;

  std::weak_ptr<ResponderCore> responder;  ///< in-flight request, if any
  bool stream_ended = false;
  bool closed = false;
};

}  // namespace

bool ParseDecimalU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

// --- per-IP token bucket -----------------------------------------------------

/// One token bucket per peer IPv4 address: `rps` sustained, `burst` peak.
/// The map is bounded — when it outgrows kMaxBuckets, buckets that have
/// refilled to full (idle peers) are purged.
class IpRateLimiter {
 public:
  IpRateLimiter(double rps, double burst)
      : rps_(rps), burst_(burst > 0 ? burst : std::max(rps, 1.0)) {}

  bool Allow(uint32_t ip) {
    const Clock::time_point now = Clock::now();
    std::lock_guard<std::mutex> lock(mu_);
    if (buckets_.size() > kMaxBuckets) Purge(now);
    auto [it, fresh] = buckets_.try_emplace(ip);
    Bucket& b = it->second;
    if (fresh) {
      b.tokens = burst_;
    } else {
      double dt = std::chrono::duration<double>(now - b.last).count();
      b.tokens = std::min(burst_, b.tokens + dt * rps_);
    }
    b.last = now;
    if (b.tokens < 1.0) return false;
    b.tokens -= 1.0;
    return true;
  }

 private:
  struct Bucket {
    double tokens = 0;
    Clock::time_point last{};
  };

  static constexpr size_t kMaxBuckets = 4096;

  void Purge(Clock::time_point now) {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      double dt = std::chrono::duration<double>(now - it->second.last).count();
      if (it->second.tokens + dt * rps_ >= burst_) {
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }

  const double rps_;
  const double burst_;
  std::mutex mu_;
  std::unordered_map<uint32_t, Bucket> buckets_;
};

// --- worker <-> loop plumbing ------------------------------------------------

/// State shared by the event loop, the worker pool, and every Responder a
/// handler may have copied out. Lives in a shared_ptr so a parked
/// Responder can outlive the server: once the loop exits it flips
/// `accepting` off and all further posts become no-ops.
struct HttpServer::Shared {
  struct Completion {
    enum Kind { kResponse, kStreamBegin, kStreamChunk, kStreamEnd };
    Kind kind = kResponse;
    uint64_t conn_id = 0;
    std::string request_id;
    uint64_t dispatch_ns = 0;
    HttpResponse resp;  ///< kResponse payload / kStreamBegin head fields
    std::string chunk;  ///< kStreamChunk payload
  };
  struct Job {
    HttpRequest request;
    std::shared_ptr<ResponderCore> core;
  };

  // Completion queue: any thread -> loop thread, eventfd-signalled.
  std::mutex mu;
  std::vector<Completion> completions;
  int event_fd = -1;
  bool accepting = true;  ///< false once the loop has exited

  // Job queue: loop thread -> workers.
  std::mutex job_mu;
  std::condition_variable job_cv;
  std::deque<Job> jobs;
  bool job_stop = false;

  void Post(Completion c) {
    std::lock_guard<std::mutex> lock(mu);
    if (!accepting) return;
    completions.push_back(std::move(c));
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof(one));
  }
};

/// The thread-safe core behind every Responder copy for one request.
/// Completion is a single atomic race (`completed`); all effects funnel
/// through Shared::Post so only the loop thread touches the socket.
struct ResponderCore {
  std::shared_ptr<HttpServer::Shared> shared;
  uint64_t conn_id = 0;
  std::string request_id;
  uint64_t dispatch_ns = 0;
  size_t buffer_cap = 0;

  std::atomic<bool> completed{false};
  std::atomic<bool> streaming{false};
  std::atomic<bool> ended{false};
  std::atomic<bool> alive{true};
  /// Producer-side view of unflushed stream bytes (loop refreshes it on
  /// every flush); approximate, used only to answer Write() backpressure.
  std::atomic<size_t> buffered{0};

  void SendResponse(HttpResponse resp) {
    if (completed.exchange(true)) return;
    HttpServer::Shared::Completion c;
    c.kind = HttpServer::Shared::Completion::kResponse;
    c.conn_id = conn_id;
    c.request_id = request_id;
    c.dispatch_ns = dispatch_ns;
    c.resp = std::move(resp);
    shared->Post(std::move(c));
  }

  bool StartStream(int status, const std::string& content_type,
                   std::vector<std::pair<std::string, std::string>> headers) {
    if (!alive.load(std::memory_order_relaxed)) return false;
    if (completed.exchange(true)) return false;
    streaming.store(true, std::memory_order_release);
    HttpServer::Shared::Completion c;
    c.kind = HttpServer::Shared::Completion::kStreamBegin;
    c.conn_id = conn_id;
    c.request_id = request_id;
    c.dispatch_ns = dispatch_ns;
    c.resp.status = status;
    c.resp.content_type = content_type;
    c.resp.headers = std::move(headers);
    shared->Post(std::move(c));
    return true;
  }

  bool WriteChunk(std::string_view chunk) {
    if (!streaming.load(std::memory_order_acquire) ||
        ended.load(std::memory_order_relaxed) ||
        !alive.load(std::memory_order_relaxed)) {
      return false;
    }
    size_t now_buffered =
        buffered.fetch_add(chunk.size(), std::memory_order_relaxed) +
        chunk.size();
    if (now_buffered > buffer_cap) {
      buffered.fetch_sub(chunk.size(), std::memory_order_relaxed);
      return false;  // slow consumer: stop producing, let it resume from cursor
    }
    HttpServer::Shared::Completion c;
    c.kind = HttpServer::Shared::Completion::kStreamChunk;
    c.conn_id = conn_id;
    c.chunk = std::string(chunk);
    shared->Post(std::move(c));
    return true;
  }

  void EndStream() {
    if (!streaming.load(std::memory_order_acquire)) return;
    if (ended.exchange(true)) return;
    HttpServer::Shared::Completion c;
    c.kind = HttpServer::Shared::Completion::kStreamEnd;
    c.conn_id = conn_id;
    shared->Post(std::move(c));
  }

  ~ResponderCore() {
    // Dropped without completing: a buggy route must never leak the
    // connection, so the request answers 500. A stream dropped without
    // End() is ended for it.
    if (!completed.load(std::memory_order_relaxed)) {
      completed.store(true, std::memory_order_relaxed);
      HttpServer::Shared::Completion c;
      c.kind = HttpServer::Shared::Completion::kResponse;
      c.conn_id = conn_id;
      c.request_id = request_id;
      c.dispatch_ns = dispatch_ns;
      c.resp = {.status = 500,
                .content_type = "text/plain",
                .body = "internal error\n"};
      shared->Post(std::move(c));
    } else if (streaming.load(std::memory_order_relaxed) &&
               !ended.load(std::memory_order_relaxed)) {
      HttpServer::Shared::Completion c;
      c.kind = HttpServer::Shared::Completion::kStreamEnd;
      c.conn_id = conn_id;
      shared->Post(std::move(c));
    }
  }
};

void Responder::Send(HttpResponse resp) const {
  if (core_) core_->SendResponse(std::move(resp));
}

bool Responder::BeginStream(
    int status, const std::string& content_type,
    std::vector<std::pair<std::string, std::string>> headers) const {
  return core_ != nullptr &&
         core_->StartStream(status, content_type, std::move(headers));
}

bool Responder::Write(std::string_view chunk) const {
  return core_ != nullptr && core_->WriteChunk(chunk);
}

void Responder::End() const {
  if (core_) core_->EndStream();
}

bool Responder::alive() const {
  return core_ != nullptr && core_->alive.load(std::memory_order_relaxed);
}

const std::string& Responder::request_id() const {
  static const std::string kEmpty;
  return core_ != nullptr ? core_->request_id : kEmpty;
}

// --- event loop --------------------------------------------------------------

/// The loop thread's world: the epoll set and the connection table. Tags
/// 0 (listener) and 1 (eventfd) are reserved; connections start at 2.
struct HttpServer::Loop {
  HttpServer* s = nullptr;
  int epoll_fd = -1;
  int event_fd = -1;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns;
  std::vector<uint64_t> dead;  ///< ids to reap at the end of the iteration
  uint64_t next_id = 2;
  uint64_t last_sweep_ns = 0;
  bool listener_registered = true;
  uint64_t accept_retry_ns = 0;  ///< 0 = listener not parked on EMFILE

  static constexpr uint64_t kSweepEveryNs = 50'000'000ULL;    // 50ms
  static constexpr uint64_t kAcceptRetryNs = 20'000'000ULL;  // 20ms

  void Run() {
    std::vector<struct epoll_event> events(128);
    while (!s->stopping_.load(std::memory_order_relaxed)) {
      int n = ::epoll_wait(epoll_fd, events.data(),
                           static_cast<int>(events.size()), 50);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        uint64_t tag = events[i].data.u64;
        uint32_t ev = events[i].events;
        if (tag == 0) {
          AcceptReady();
          continue;
        }
        if (tag == 1) {
          uint64_t v;
          while (::read(event_fd, &v, sizeof(v)) > 0) {
          }
          continue;
        }
        auto it = conns.find(tag);
        if (it == conns.end() || it->second->closed) continue;
        Conn* c = it->second.get();
        if (ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) OnReadable(c);
        if (!c->closed && (ev & EPOLLOUT)) Advance(c);
      }
      ProcessCompletions();
      if (s->draining_.load(std::memory_order_relaxed)) {
        if (listener_registered) {
          listener_registered = false;
          ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, s->listen_fd_, nullptr);
        }
        DrainSweep();
      }
      uint64_t now = NowNs();
      if (now - last_sweep_ns >= kSweepEveryNs) {
        last_sweep_ns = now;
        SweepDeadlines(now);
      }
      if (accept_retry_ns != 0 && now >= accept_retry_ns &&
          !s->draining_.load(std::memory_order_relaxed)) {
        // The EMFILE backoff elapsed: re-arm the parked listener and let
        // AcceptReady either drain the backlog or park it again.
        accept_retry_ns = 0;
        if (!listener_registered) {
          struct epoll_event lev;
          std::memset(&lev, 0, sizeof(lev));
          lev.events = EPOLLIN;
          lev.data.u64 = 0;
          if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, s->listen_fd_, &lev) ==
              0) {
            listener_registered = true;
          } else {
            accept_retry_ns = now + kAcceptRetryNs;
          }
        }
      }
      Reap();
    }
    // Hard stop: abort every connection. Parked Responders see alive()
    // turn false; their eventual posts land in a queue nobody reads and
    // are dropped once `accepting` flips below.
    for (auto& [id, c] : conns) {
      if (c->closed) continue;
      if (auto r = c->responder.lock()) {
        r->alive.store(false, std::memory_order_relaxed);
      }
      ::close(c->fd);
      s->held_connections_.fetch_sub(1, std::memory_order_acq_rel);
    }
    conns.clear();
    s->active_connections_->Set(
        static_cast<double>(s->held_connections_.load()));
    std::lock_guard<std::mutex> lock(s->shared_->mu);
    s->shared_->accepting = false;
  }

  void AcceptReady() {
    for (;;) {
      struct sockaddr_in peer;
      socklen_t peer_len = sizeof(peer);
      int fd = ::accept(s->listen_fd_,
                        reinterpret_cast<struct sockaddr*>(&peer), &peer_len);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EMFILE || errno == ENFILE) {
          // Out of fds with a level-triggered listener: the pending backlog
          // would wake epoll_wait every iteration and hot-spin the loop.
          // Park the listener and retry once the backoff window passes —
          // a closing connection frees the slot the backlog is waiting on.
          if (listener_registered) {
            listener_registered = false;
            ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, s->listen_fd_, nullptr);
            flight::FlightRecorder::Get().Record(
                "http", "accept_emfile_parked",
                s->held_connections_.load(std::memory_order_relaxed));
          }
          accept_retry_ns = NowNs() + kAcceptRetryNs;
          return;
        }
        return;  // EAGAIN, or the listener is gone
      }
      if (s->stopping_.load(std::memory_order_relaxed) ||
          s->draining_.load(std::memory_order_relaxed)) {
        ::close(fd);
        continue;
      }
      int flags = ::fcntl(fd, F_GETFL, 0);
      ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      uint32_t ip =
          peer.sin_family == AF_INET ? ntohl(peer.sin_addr.s_addr) : 0;

      // Admission control: shed beyond the cap with an immediate 503 so a
      // connection flood can never grow server memory. The send is a
      // best-effort nonblocking write — a peer with a full socket buffer
      // just loses the courtesy body.
      if (s->held_connections_.load(std::memory_order_acquire) >=
          s->options_.max_connections) {
        s->n_shed_->Inc();
        flight::FlightRecorder::Get().Record(
            "http", "shed_503",
            s->held_connections_.load(std::memory_order_relaxed));
        std::string resp = SerializeResponse(
            RetryLaterResponse(503, "server overloaded\n"),
            /*keep_alive=*/false);
        [[maybe_unused]] ssize_t sn =
            ::send(fd, resp.data(), resp.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }

      auto c = std::make_unique<Conn>();
      c->fd = fd;
      c->id = next_id++;
      c->ip = ip;
      RearmDeadline(c.get());
      struct epoll_event ev;
      std::memset(&ev, 0, sizeof(ev));
      ev.events = EPOLLIN;
      ev.data.u64 = c->id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        continue;
      }
      size_t held =
          s->held_connections_.fetch_add(1, std::memory_order_acq_rel) + 1;
      s->active_connections_->Set(static_cast<double>(held));
      s->n_accepted_->Inc();
      conns.emplace(c->id, std::move(c));
    }
  }

  void OnReadable(Conn* c) {
    if (c->peer_eof) return;
    char chunk[16384];
    for (;;) {
      ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        if (c->state == Conn::kStream) continue;  // streams ignore input
        bool was_empty = c->in.empty();
        c->in.append(chunk, static_cast<size_t>(n));
        if (c->in.size() >
            HttpServer::kMaxHeadBytes + s->options_.max_body_bytes) {
          CloseConn(c);  // peer is flooding faster than we parse
          return;
        }
        if (c->state == Conn::kReadHead) {
          if (was_empty) c->head_start_ns = NowNs();
          RearmDeadline(c);
        } else if (c->state == Conn::kReadBody) {
          RearmDeadline(c);
        }
        continue;
      }
      if (n == 0) {
        if (c->state == Conn::kStream) {
          CloseConn(c);  // stream consumer went away
          return;
        }
        c->peer_eof = true;
        UpdateEvents(c);  // stop polling EPOLLIN on an EOF'd socket
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(c);
      return;
    }
    Advance(c);
  }

  /// Drive the state machine as far as readiness allows. Never recursive:
  /// every step either makes progress and loops, or returns.
  void Advance(Conn* c) {
    while (!c->closed) {
      switch (c->state) {
        case Conn::kReadHead:
          if (!StepHead(c)) return;
          break;
        case Conn::kReadBody:
          if (!StepBody(c)) return;
          break;
        case Conn::kHandling:
          return;  // a completion will move us on
        case Conn::kWrite: {
          if (!FlushOut(c)) return;
          if (!c->out.empty()) return;  // kernel buffer full; wait EPOLLOUT
          if (c->close_after_write) {
            CloseConn(c);
            return;
          }
          if (c->peer_eof && c->in.empty()) {
            CloseConn(c);
            return;
          }
          c->state = Conn::kReadHead;
          c->head_start_ns = c->in.empty() ? 0 : NowNs();
          RearmDeadline(c);
          break;  // maybe a pipelined request is already buffered
        }
        case Conn::kStream: {
          if (!FlushOut(c)) return;
          if (c->out.empty() && c->stream_ended) {
            CloseConn(c);
          }
          return;
        }
      }
    }
  }

  /// Returns false when the loop should stop (need more bytes / closed).
  bool StepHead(Conn* c) {
    size_t head_end = c->in.find(kHeadEnd);
    if (head_end == std::string::npos) {
      if (c->in.size() > HttpServer::kMaxHeadBytes) {
        QueueError(c, 400, "request head too large\n");
        return true;
      }
      if (c->peer_eof) {
        CloseConn(c);  // idle keep-alive close, or truncated request
        return false;
      }
      return false;
    }
    auto parsed = ParseRequestHead(
        std::string_view(c->in).substr(0, head_end + kHeadEnd.size()));
    if (!parsed) {
      QueueError(c, 400, "malformed request\n");
      return true;
    }
    if (parsed->has_transfer_encoding) {
      QueueError(c, 501, "transfer-encoding not supported\n");
      return true;
    }
    if (parsed->content_length > s->options_.max_body_bytes) {
      QueueError(c, 413, "body too large\n");
      return true;
    }
    c->head = std::move(*parsed);
    c->head_len = head_end + kHeadEnd.size();
    c->state = Conn::kReadBody;
    c->body_start_ns = NowNs();
    RearmDeadline(c);
    return true;
  }

  bool StepBody(Conn* c) {
    size_t total = c->head_len + c->head.content_length;
    if (c->in.size() < total) {
      if (c->peer_eof) CloseConn(c);  // truncated body
      return false;
    }
    c->head.request.body = c->in.substr(c->head_len, c->head.content_length);
    c->in.erase(0, total);
    c->request_keep_alive = c->head.keep_alive;
    Dispatch(c);
    return true;
  }

  void Dispatch(Conn* c) {
    const bool ka = c->request_keep_alive &&
                    !s->draining_.load(std::memory_order_relaxed);
    // Per-IP rate limit — answered before the handler runs, so a flooding
    // client costs parsing, not proving. Keep-alive is preserved: a
    // well-behaved client backs off and reuses the connection.
    if (s->limiter_ != nullptr && !s->limiter_->Allow(c->ip)) {
      s->n_rate_limited_->Inc();
      flight::FlightRecorder::Get().Record("http", "rate_limited_429");
      c->out = SerializeResponse(
          RetryLaterResponse(429, "rate limit exceeded\n"), ka);
      c->out_off = 0;
      c->close_after_write = !ka;
      c->state = Conn::kWrite;
      RearmDeadline(c);
      return;
    }
    s->n_requests_->Inc();
    HttpRequest request = std::move(c->head.request);
    c->head.request = HttpRequest{};
    // Correlation id: honor the client's X-Request-Id, else mint one.
    auto rid_it = request.headers.find("x-request-id");
    request.request_id =
        rid_it != request.headers.end() && !rid_it->second.empty()
            ? SanitizeRequestId(rid_it->second)
            : GenerateRequestId();
    auto core = std::make_shared<ResponderCore>();
    core->shared = s->shared_;
    core->conn_id = c->id;
    core->request_id = request.request_id;
    core->dispatch_ns = NowNs();
    core->buffer_cap = s->options_.max_stream_buffer_bytes;
    c->responder = core;
    c->state = Conn::kHandling;
    c->deadline_ns = 0;  // the handler owns the clock now
    {
      std::lock_guard<std::mutex> lock(s->shared_->job_mu);
      s->shared_->jobs.push_back(
          Shared::Job{std::move(request), std::move(core)});
    }
    s->shared_->job_cv.notify_one();
  }

  /// Protocol-violation responses close the connection and (matching the
  /// worker-pool transport) do not count toward the status-class counters
  /// — those meter dispatched handler responses.
  void QueueError(Conn* c, int status, std::string body) {
    c->out = SerializeResponse({.status = status,
                                .content_type = "text/plain",
                                .body = std::move(body)},
                               /*keep_alive=*/false);
    c->out_off = 0;
    c->close_after_write = true;
    c->state = Conn::kWrite;
    RearmDeadline(c);
  }

  /// Push buffered out-bytes to the kernel. False = connection closed.
  bool FlushOut(Conn* c) {
    while (c->out_off < c->out.size()) {
      ssize_t n = ::send(c->fd, c->out.data() + c->out_off,
                         c->out.size() - c->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      CloseConn(c);
      return false;
    }
    size_t pending = c->out.size() - c->out_off;
    if (pending == 0) {
      if (c->out_off > 0) {
        c->out.clear();
        c->out_off = 0;
      }
      if (c->want_write) {
        c->want_write = false;
        UpdateEvents(c);
      }
    } else {
      if (!c->want_write) {
        c->want_write = true;
        UpdateEvents(c);
      }
      RearmDeadline(c);  // stalled-write deadline
    }
    if (c->state == Conn::kStream) {
      if (auto r = c->responder.lock()) {
        r->buffered.store(pending, std::memory_order_relaxed);
      }
    }
    return true;
  }

  void UpdateEvents(Conn* c) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = (c->peer_eof ? 0u : static_cast<uint32_t>(EPOLLIN)) |
                (c->want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.u64 = c->id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void RearmDeadline(Conn* c) {
    const uint64_t now = NowNs();
    const uint64_t recv_ns =
        s->options_.recv_timeout_seconds > 0
            ? static_cast<uint64_t>(s->options_.recv_timeout_seconds) *
                  1'000'000'000ULL
            : 0;
    const uint64_t head_ns =
        s->options_.header_timeout_seconds > 0
            ? static_cast<uint64_t>(s->options_.header_timeout_seconds) *
                  1'000'000'000ULL
            : 0;
    const uint64_t body_ns =
        s->options_.body_timeout_seconds > 0
            ? static_cast<uint64_t>(s->options_.body_timeout_seconds) *
                  1'000'000'000ULL
            : 0;
    switch (c->state) {
      case Conn::kReadHead:
        if (c->in.empty()) {
          // Idle keep-alive wait: plain inactivity timeout, closed silently.
          c->deadline_ns = recv_ns ? now + recv_ns : 0;
          c->expiry = Conn::kSilentClose;
        } else {
          // Mid-head: idle timer resets on progress, but the total head
          // budget is anchored at the first byte — a slow-loris peer
          // trickling one byte per interval still gets 408.
          uint64_t d = recv_ns ? now + recv_ns : 0;
          if (head_ns) {
            uint64_t hd = c->head_start_ns + head_ns;
            d = d ? std::min(d, hd) : hd;
          }
          c->deadline_ns = d;
          c->expiry = Conn::k408Head;
        }
        break;
      case Conn::kReadBody: {
        uint64_t d = recv_ns ? now + recv_ns : 0;
        if (body_ns) {
          uint64_t bd = c->body_start_ns + body_ns;
          d = d ? std::min(d, bd) : bd;
        }
        c->deadline_ns = d;
        c->expiry = Conn::k408Body;
        break;
      }
      case Conn::kHandling:
        c->deadline_ns = 0;
        break;
      case Conn::kWrite:
        c->deadline_ns = recv_ns ? now + recv_ns : 0;
        c->expiry = Conn::kSilentClose;
        break;
      case Conn::kStream:
        // Only a stalled flush is a deadline; an idle stream waits for
        // events indefinitely.
        c->deadline_ns =
            !c->out.empty() && recv_ns ? now + recv_ns : 0;
        c->expiry = Conn::kSilentClose;
        break;
    }
  }

  void SweepDeadlines(uint64_t now) {
    for (auto& [id, cptr] : conns) {
      Conn* c = cptr.get();
      if (c->closed || c->deadline_ns == 0 || now < c->deadline_ns) continue;
      switch (c->expiry) {
        case Conn::kSilentClose:
          CloseConn(c);
          break;
        case Conn::k408Head:
          s->n_timed_out_->Inc();
          flight::FlightRecorder::Get().Record("http", "timeout_408_head");
          QueueError(c, 408, "timed out reading request head\n");
          Advance(c);
          break;
        case Conn::k408Body:
          s->n_timed_out_->Inc();
          flight::FlightRecorder::Get().Record("http", "timeout_408_body");
          QueueError(c, 408, "timed out reading request body\n");
          Advance(c);
          break;
      }
    }
  }

  void ProcessCompletions() {
    std::vector<Shared::Completion> batch;
    {
      std::lock_guard<std::mutex> lock(s->shared_->mu);
      batch.swap(s->shared_->completions);
    }
    for (auto& comp : batch) {
      auto it = conns.find(comp.conn_id);
      if (it == conns.end() || it->second->closed) continue;
      Conn* c = it->second.get();
      switch (comp.kind) {
        case Shared::Completion::kResponse: {
          if (c->state != Conn::kHandling) break;
          comp.resp.headers.emplace_back("X-Request-Id", comp.request_id);
          s->CountResponseClass(comp.resp.status);
          s->request_seconds_->Observe(
              static_cast<double>(NowNs() - comp.dispatch_ns) * 1e-9);
          // Keep-alive decided at completion time so in-flight requests
          // finished during a drain answer with Connection: close.
          const bool ka = c->request_keep_alive &&
                          !s->draining_.load(std::memory_order_relaxed);
          c->out = SerializeResponse(comp.resp, ka);
          c->out_off = 0;
          c->close_after_write = !ka;
          c->state = Conn::kWrite;
          RearmDeadline(c);
          Advance(c);
          break;
        }
        case Shared::Completion::kStreamBegin: {
          if (c->state != Conn::kHandling) break;
          s->CountResponseClass(comp.resp.status);
          s->request_seconds_->Observe(
              static_cast<double>(NowNs() - comp.dispatch_ns) * 1e-9);
          c->out += SerializeStreamHead(comp.resp.status,
                                        comp.resp.content_type,
                                        comp.resp.headers, comp.request_id);
          c->state = Conn::kStream;
          c->stream_ended = false;
          if (s->draining_.load(std::memory_order_relaxed)) {
            c->stream_ended = true;  // flush the head, then close
            if (auto r = c->responder.lock()) {
              r->alive.store(false, std::memory_order_relaxed);
            }
          }
          RearmDeadline(c);
          Advance(c);
          break;
        }
        case Shared::Completion::kStreamChunk: {
          if (c->state != Conn::kStream || c->stream_ended) break;
          size_t pending = c->out.size() - c->out_off;
          if (pending + comp.chunk.size() >
              s->options_.max_stream_buffer_bytes) {
            // Authoritative backpressure: the consumer is slower than the
            // producer and the bounded buffer is full — disconnect; the
            // subscriber re-attaches and resumes from its cursor.
            flight::FlightRecorder::Get().Record("http", "stream_overflow");
            CloseConn(c);
            break;
          }
          c->out += comp.chunk;
          Advance(c);
          break;
        }
        case Shared::Completion::kStreamEnd: {
          if (c->state != Conn::kStream) break;
          c->stream_ended = true;
          if (auto r = c->responder.lock()) {
            r->alive.store(false, std::memory_order_relaxed);
          }
          Advance(c);
          break;
        }
      }
    }
  }

  /// Graceful-drain pass, run every loop iteration while draining: idle
  /// keep-alive connections close now, live streams end (flushing what is
  /// buffered), in-flight requests are left to finish on their own.
  void DrainSweep() {
    for (auto& [id, cptr] : conns) {
      Conn* c = cptr.get();
      if (c->closed) continue;
      if (c->state == Conn::kReadHead && c->in.empty() && c->out.empty()) {
        CloseConn(c);
      } else if (c->state == Conn::kStream && !c->stream_ended) {
        c->stream_ended = true;
        if (auto r = c->responder.lock()) {
          r->alive.store(false, std::memory_order_relaxed);
        }
        Advance(c);
      }
    }
  }

  void CloseConn(Conn* c) {
    if (c->closed) return;
    c->closed = true;
    if (auto r = c->responder.lock()) {
      r->alive.store(false, std::memory_order_relaxed);
    }
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    ::close(c->fd);
    dead.push_back(c->id);
    size_t held =
        s->held_connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    s->active_connections_->Set(static_cast<double>(held));
  }

  /// Deferred erase: CloseConn may run mid-iteration over `conns`, so the
  /// table only shrinks here, between iterations.
  void Reap() {
    for (uint64_t id : dead) conns.erase(id);
    dead.clear();
  }
};

// --- server lifecycle --------------------------------------------------------

HttpServer::HttpServer(Options options, AsyncHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  metrics::Registry& reg = options_.registry != nullptr
                               ? *options_.registry
                               : metrics::Registry::Default();
  n_accepted_ = reg.GetCounter("vchain_http_accepted_total",
                               "Connections admitted to the event loop");
  n_requests_ = reg.GetCounter("vchain_http_requests_total",
                               "Requests dispatched to the handler");
  n_shed_ = reg.GetCounter("vchain_http_shed_total",
                           "Connections shed with 503 at accept");
  n_rate_limited_ = reg.GetCounter("vchain_http_rate_limited_total",
                                   "Requests answered 429 by the per-IP "
                                   "token bucket");
  n_timed_out_ = reg.GetCounter(
      "vchain_http_timeout_total",
      "Connections dropped for slow head/body progress (408)");
  const char* status_name = "vchain_http_responses_total";
  const char* status_help = "Responses by status class";
  n_status_2xx_ = reg.GetCounter(status_name, status_help, {{"class", "2xx"}});
  n_status_3xx_ = reg.GetCounter(status_name, status_help, {{"class", "3xx"}});
  n_status_4xx_ = reg.GetCounter(status_name, status_help, {{"class", "4xx"}});
  n_status_5xx_ = reg.GetCounter(status_name, status_help, {{"class", "5xx"}});
  active_connections_ =
      reg.GetGauge("vchain_http_active_connections",
                   "Connections held right now (idle + in service)");
  request_seconds_ = reg.GetLatencyHistogram(
      "vchain_http_request_seconds",
      "Handler wall time per dispatched request");
}

void HttpServer::CountResponseClass(int status) {
  if (status >= 500) {
    n_status_5xx_->Inc();
  } else if (status >= 400) {
    n_status_4xx_->Inc();
  } else if (status >= 300) {
    n_status_3xx_->Inc();
  } else {
    n_status_2xx_->Inc();
  }
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(Options options,
                                                      AsyncHandler handler) {
  if (options.num_threads == 0) options.num_threads = 1;
  if (options.max_connections == 0) options.max_connections = 1;
  if (options.accept_queue == 0) options.accept_queue = 1;
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(options), std::move(handler)));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   server->options_.bind_address);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 512) != 0) {
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  int lflags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, lflags | O_NONBLOCK);
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  if (server->options_.rate_limit_rps > 0) {
    server->limiter_ = std::make_unique<IpRateLimiter>(
        server->options_.rate_limit_rps, server->options_.rate_limit_burst);
  }

  int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (efd < 0) {
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) {
    ::close(efd);
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  server->shared_ = std::make_shared<Shared>();
  server->shared_->event_fd = efd;
  server->loop_ = std::make_unique<Loop>();
  server->loop_->s = server.get();
  server->loop_->epoll_fd = epfd;
  server->loop_->event_fd = efd;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // listener tag
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, server->listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // eventfd tag
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, efd, &ev);

  for (size_t i = 0; i < server->options_.num_threads; ++i) {
    server->workers_.emplace_back([srv = server.get()] { srv->WorkerMain(); });
  }
  server->loop_thread_ = std::thread([srv = server.get()] { srv->LoopMain(); });
  return server;
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(Options options,
                                                      Handler handler) {
  // The one-line sync adapter: buffered routes run unchanged on the loop.
  return Start(std::move(options),
               AsyncHandler([h = std::move(handler)](const HttpRequest& req,
                                                     Responder responder) {
                 responder.Send(h(req));
               }));
}

HttpServer::~HttpServer() { Stop(); }

HttpServerStats HttpServer::stats() const {
  // Read back from the registry counters — the same cells /metrics
  // exposes — so the JSON stats endpoint and the Prometheus exposition
  // cannot disagree.
  HttpServerStats s;
  s.accepted = n_accepted_->Value();
  s.requests = n_requests_->Value();
  s.shed_overload = n_shed_->Value();
  s.rate_limited = n_rate_limited_->Value();
  s.timed_out = n_timed_out_->Value();
  s.active_connections = held_connections_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::LoopMain() { loop_->Run(); }

void HttpServer::WorkerMain() {
  for (;;) {
    Shared::Job job;
    {
      std::unique_lock<std::mutex> lock(shared_->job_mu);
      shared_->job_cv.wait(lock, [this] {
        return shared_->job_stop || !shared_->jobs.empty();
      });
      if (shared_->job_stop) return;  // Stop() aborts queued work
      job = std::move(shared_->jobs.front());
      shared_->jobs.pop_front();
    }
    // The id is made ambient for every log line the handler emits
    // (thread-local; one job per worker at a time).
    logging::ScopedRequestId rid_scope(job.request.request_id);
    try {
      handler_(job.request, Responder(job.core));
    } catch (...) {
      // A throwing handler is a programming error upstream, but answering
      // 500 beats tearing down the whole server. No-op if the handler
      // already completed before throwing.
      Responder(job.core).Send({.status = 500,
                                .content_type = "text/plain",
                                .body = "internal error\n"});
    }
  }
}

void HttpServer::Stop() {
  if (stopping_.exchange(true)) {
    // Sequential second call (Drain then destructor): finish the joins.
    if (loop_thread_.joinable()) loop_thread_.join();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  flight::FlightRecorder::Get().Record("http", "server_stop", port_);
  {
    // Kick the loop out of epoll_wait. Post-free write: the eventfd only
    // closes after the join below, and `accepting` guards the late case.
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->accepting && shared_->event_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(shared_->event_fd, &one, sizeof(one));
    }
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(shared_->job_mu);
    shared_->job_stop = true;
  }
  shared_->job_cv.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  {
    // Queued-but-never-run jobs die here; their cores post into a queue
    // nobody reads (accepting == false), which is a no-op.
    std::lock_guard<std::mutex> lock(shared_->job_mu);
    shared_->jobs.clear();
  }
  if (loop_ != nullptr && loop_->epoll_fd >= 0) {
    ::close(loop_->epoll_fd);
    loop_->epoll_fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->event_fd >= 0) {
      ::close(shared_->event_fd);
      shared_->event_fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::Drain(int timeout_seconds) {
  if (draining_.exchange(true) || stopping_.load(std::memory_order_relaxed)) {
    Stop();  // second caller (or raced with Stop): fall through to hard stop
    return;
  }
  flight::FlightRecorder::Get().Record("http", "server_drain", port_);
  // Refuse new connections; the loop deregisters the listener and starts
  // its drain sweeps (idle connections close, streams end, in-flight
  // requests finish with Connection: close) on its next iteration.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(shared_->mu);
    if (shared_->accepting && shared_->event_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(shared_->event_fd, &one, sizeof(one));
    }
  }
  const Clock::time_point deadline =
      Clock::now() + std::chrono::seconds(timeout_seconds);
  while (held_connections_.load(std::memory_order_acquire) > 0 &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Stop();
}

// --- client ------------------------------------------------------------------

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Status HttpConnection::Connect() {
  if (fd_ >= 0) return Status::OK();
  auto fd = OpenClientSocket(options_.host, options_.port,
                             options_.recv_timeout_seconds,
                             options_.connect_timeout_seconds);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  return Status::OK();
}

Status HttpConnection::SendAll(std::string_view data) {
  if (!SendAllFd(fd_, data)) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    return Status::Internal("send to " + options_.host + ":" +
                            std::to_string(options_.port) +
                            " failed: " + std::strerror(err));
  }
  return Status::OK();
}

Result<HttpResponse> HttpConnection::RoundTrip(
    const std::string& method, const std::string& target,
    std::string_view body, const std::string& content_type,
    bool* sent_on_wire,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  if (sent_on_wire != nullptr) *sent_on_wire = false;
  const std::string peer =
      options_.host + ":" + std::to_string(options_.port);
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + peer + "\r\n";
  request += "Content-Type: " + content_type + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "Connection: keep-alive\r\n\r\n";
  request.append(body.data(), body.size());

  // A kept-alive socket may have been closed by the peer since the last
  // round-trip; retry the whole exchange once on a fresh connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool reused = fd_ >= 0;
    VCHAIN_RETURN_IF_ERROR(Connect());
    if (sent_on_wire != nullptr) *sent_on_wire = true;
    {
      Status sent = SendAll(request);
      if (!sent.ok()) {
        if (reused) continue;  // stale keep-alive; one fresh retry
        return sent;
      }
    }

    std::string buf;
    size_t head_end;
    Status recv_failure = Status::OK();
    while ((head_end = buf.find(kHeadEnd)) == std::string::npos) {
      if (buf.size() > HttpServer::kMaxHeadBytes) {
        return Status::Corruption("response head too large");
      }
      int err = 0;
      RecvOutcome out = RecvMore(fd_, &buf, &err);
      if (out == RecvOutcome::kData) continue;
      if (out == RecvOutcome::kTimeout) {
        recv_failure = Status::Internal(
            "recv from " + peer + " timed out after " +
            std::to_string(options_.recv_timeout_seconds) + "s");
      } else if (out == RecvOutcome::kError) {
        recv_failure = Status::Internal("recv from " + peer +
                                        " failed: " + std::strerror(err));
      } else {
        recv_failure = Status::Internal("connection to " + peer +
                                        " closed by peer mid-response");
      }
      break;
    }
    if (!recv_failure.ok()) {
      bool clean_early_close = buf.empty();
      ::close(fd_);
      fd_ = -1;
      // A reused connection the server closed before sending anything is a
      // stale keep-alive, not a failure — retry once on a fresh socket.
      if (reused && clean_early_close) continue;
      return recv_failure;
    }

    std::string_view head = std::string_view(buf).substr(0, head_end);
    size_t line_end = head.find(kCrlf);
    std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
      return Status::Corruption("malformed status line");
    }
    uint64_t status_code = 0;
    if (!ParseDecimalU64(status_line.substr(9, 3), &status_code)) {
      return Status::Corruption("malformed status code");
    }

    HttpResponse resp;
    resp.status = static_cast<int>(status_code);
    size_t content_length = 0;
    bool have_length = false;
    bool keep_alive = true;
    std::string_view rest = head.substr(
        line_end == std::string_view::npos ? head.size() : line_end + 2);
    while (!rest.empty()) {
      size_t eol = rest.find(kCrlf);
      std::string_view line =
          eol == std::string_view::npos ? rest : rest.substr(0, eol);
      rest = eol == std::string_view::npos ? std::string_view{}
                                           : rest.substr(eol + 2);
      if (line.empty()) continue;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Status::Corruption("malformed response header");
      }
      std::string key = ToLower(line.substr(0, colon));
      std::string value(Trim(line.substr(colon + 1)));
      if (key == "content-length") {
        uint64_t v = 0;
        if (have_length || !ParseDecimalU64(value, &v) ||
            v > options_.max_response_bytes) {
          return Status::Corruption("bad content-length");
        }
        have_length = true;
        content_length = v;
      } else if (key == "content-type") {
        resp.content_type = value;
      } else if (key == "connection") {
        if (ToLower(value) == "close") keep_alive = false;
      } else {
        resp.headers.emplace_back(std::move(key), std::move(value));
      }
    }
    if (!have_length) {
      return Status::Corruption("response without content-length");
    }

    size_t total = head_end + kHeadEnd.size() + content_length;
    while (buf.size() < total) {
      int err = 0;
      RecvOutcome out = RecvMore(fd_, &buf, &err);
      if (out == RecvOutcome::kData) continue;
      ::close(fd_);
      fd_ = -1;
      if (out == RecvOutcome::kTimeout) {
        return Status::Internal(
            "recv from " + peer + " timed out after " +
            std::to_string(options_.recv_timeout_seconds) +
            "s mid-body");
      }
      if (out == RecvOutcome::kError) {
        return Status::Internal("recv from " + peer +
                                " failed mid-body: " + std::strerror(err));
      }
      return Status::Internal("connection to " + peer +
                              " closed by peer mid-body");
    }
    resp.body = buf.substr(head_end + kHeadEnd.size(), content_length);
    if (!keep_alive) {
      ::close(fd_);
      fd_ = -1;
    }
    return resp;
  }
  return Status::Internal("request to " + peer + " failed after reconnect");
}

}  // namespace vchain::net

#include "net/http.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace vchain::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

void SetRecvTimeout(int fd, int seconds) {
  if (seconds <= 0) return;
  struct timeval tv;
  tv.tv_sec = seconds;
  tv.tv_usec = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Append more bytes from `fd` into `buf`; false on EOF/error/timeout.
bool RecvMore(int fd, std::string* buf) {
  char chunk[4096];
  ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n <= 0) return false;
  buf->append(chunk, static_cast<size_t>(n));
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (c <= 0x20 || c >= 0x7F || c == ':') return false;
  }
  return true;
}

bool HexNibble(char c, uint8_t* out) {
  if (c >= '0' && c <= '9') {
    *out = static_cast<uint8_t>(c - '0');
  } else if (c >= 'a' && c <= 'f') {
    *out = static_cast<uint8_t>(c - 'a' + 10);
  } else if (c >= 'A' && c <= 'F') {
    *out = static_cast<uint8_t>(c - 'A' + 10);
  } else {
    return false;
  }
  return true;
}

bool PercentDecode(std::string_view in, std::string* out) {
  out->clear();
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '%') {
      uint8_t hi, lo;
      if (i + 2 >= in.size() || !HexNibble(in[i + 1], &hi) ||
          !HexNibble(in[i + 2], &lo)) {
        return false;
      }
      out->push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+') {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

/// Split "path?a=1&b=2" into path + decoded query map; false when malformed.
bool ParseTarget(std::string_view target, std::string* path,
                 std::map<std::string, std::string>* query) {
  if (target.empty() || target[0] != '/' ||
      target.size() > HttpServer::kMaxTargetBytes) {
    return false;
  }
  for (unsigned char c : target) {
    if (c <= 0x20 || c == 0x7F) return false;
  }
  size_t qpos = target.find('?');
  std::string_view raw_path =
      qpos == std::string_view::npos ? target : target.substr(0, qpos);
  if (!PercentDecode(raw_path, path)) return false;
  if (qpos == std::string_view::npos) return true;
  std::string_view qs = target.substr(qpos + 1);
  while (!qs.empty()) {
    size_t amp = qs.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? qs : qs.substr(0, amp);
    qs = amp == std::string_view::npos ? std::string_view{}
                                       : qs.substr(amp + 1);
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string key, value;
    if (!PercentDecode(pair.substr(0, eq == std::string_view::npos ? pair.size()
                                                                   : eq),
                       &key)) {
      return false;
    }
    if (eq != std::string_view::npos &&
        !PercentDecode(pair.substr(eq + 1), &value)) {
      return false;
    }
    (*query)[key] = value;
  }
  return true;
}

struct ParsedHead {
  HttpRequest request;
  size_t content_length = 0;
  bool keep_alive = true;
  bool has_transfer_encoding = false;
};

/// Parse one request head (everything before the blank line). nullopt =
/// protocol violation (the caller answers 400 and closes).
std::optional<ParsedHead> ParseRequestHead(std::string_view head) {
  ParsedHead out;
  size_t line_end = head.find(kCrlf);
  if (line_end == std::string_view::npos) return std::nullopt;
  std::string_view request_line = head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return std::nullopt;
  std::string_view method = request_line.substr(0, sp1);
  std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = request_line.substr(sp2 + 1);
  if (!IsToken(method)) return std::nullopt;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return std::nullopt;
  out.keep_alive = version == "HTTP/1.1";
  out.request.method = std::string(method);
  if (!ParseTarget(target, &out.request.path, &out.request.query)) {
    return std::nullopt;
  }

  std::string_view rest = head.substr(line_end + 2);
  size_t header_count = 0;
  bool have_content_length = false;
  while (!rest.empty()) {
    size_t eol = rest.find(kCrlf);
    if (eol == std::string_view::npos) return std::nullopt;
    std::string_view line = rest.substr(0, eol);
    rest = rest.substr(eol + 2);
    if (line.empty()) break;
    // obs-fold (leading whitespace continuation) is an RFC 7230 MUST NOT.
    if (line[0] == ' ' || line[0] == '\t') return std::nullopt;
    if (++header_count > HttpServer::kMaxHeaderCount) return std::nullopt;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) return std::nullopt;
    std::string key = ToLower(name);
    std::string value(Trim(line.substr(colon + 1)));
    if (key == "content-length") {
      uint64_t v = 0;
      // Duplicate or malformed Content-Length is a classic smuggling vector.
      if (have_content_length || !ParseDecimalU64(value, &v)) return std::nullopt;
      have_content_length = true;
      out.content_length = v;
    } else if (key == "transfer-encoding") {
      out.has_transfer_encoding = true;
    } else if (key == "connection") {
      std::string lower = ToLower(value);
      if (lower == "close") out.keep_alive = false;
      if (lower == "keep-alive") out.keep_alive = true;
    }
    out.request.headers[key] = std::move(value);
  }
  return out;
}

std::string SerializeResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    HttpReasonPhrase(resp.status);
  out += kCrlf;
  out += "Content-Type: " + resp.content_type;
  out += kCrlf;
  out += "Content-Length: " + std::to_string(resp.body.size());
  out += kCrlf;
  out += keep_alive ? "Connection: keep-alive" : "Connection: close";
  out += kCrlf;
  for (const auto& [name, value] : resp.headers) {
    out += name + ": " + value;
    out += kCrlf;
  }
  out += kCrlf;
  out += resp.body;
  return out;
}

bool SendAllFd(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

Result<int> OpenClientSocket(const std::string& host, uint16_t port,
                             int recv_timeout_seconds) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Internal(std::string("getaddrinfo: ") + gai_strerror(rc));
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status::Internal("connect to " + host + ":" + port_str +
                            " failed: " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetRecvTimeout(fd, recv_timeout_seconds);
  return fd;
}

}  // namespace

bool ParseDecimalU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 20) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    default: return "Unknown";
  }
}

// --- server ------------------------------------------------------------------

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(Options options,
                                                      Handler handler) {
  if (options.num_threads == 0) options.num_threads = 1;
  std::unique_ptr<HttpServer> server(
      new HttpServer(std::move(options), std::move(handler)));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " +
                                   server->options_.bind_address);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  server->active_fds_.assign(server->options_.num_threads, -1);
  for (size_t i = 0; i < server->options_.num_threads; ++i) {
    server->workers_.emplace_back(
        [srv = server.get(), i] { srv->WorkerLoop(i); });
  }
  return server;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  if (stopping_.exchange(true)) {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  // Unblock accept() in every worker, then any in-flight recv().
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    for (int fd : active_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::WorkerLoop(size_t worker_index) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetRecvTimeout(fd, options_.recv_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_fds_[worker_index] = fd;
    }
    // Stop() sets stopping_ *before* sweeping active_fds_. If its sweep ran
    // between our accept() and the registration above, it missed this fd —
    // but then this load observes stopping_ == true and we shut the
    // connection down ourselves instead of blocking in recv().
    if (stopping_.load(std::memory_order_seq_cst)) ::shutdown(fd, SHUT_RDWR);
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_fds_[worker_index] = -1;
    }
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buf;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // 1. Read the request head.
    size_t head_end;
    while ((head_end = buf.find(kHeadEnd)) == std::string::npos) {
      if (buf.size() > kMaxHeadBytes) {
        SendAllFd(fd, SerializeResponse(
                          {.status = 400,
                           .content_type = "text/plain",
                           .body = "request head too large\n"},
                          /*keep_alive=*/false));
        return;
      }
      if (!RecvMore(fd, &buf)) return;  // EOF, timeout, or Stop()
    }
    auto parsed = ParseRequestHead(std::string_view(buf).substr(
        0, head_end + kHeadEnd.size()));
    if (!parsed) {
      SendAllFd(fd, SerializeResponse({.status = 400,
                                       .content_type = "text/plain",
                                       .body = "malformed request\n"},
                                      /*keep_alive=*/false));
      return;
    }
    if (parsed->has_transfer_encoding) {
      SendAllFd(fd, SerializeResponse(
                        {.status = 501,
                         .content_type = "text/plain",
                         .body = "transfer-encoding not supported\n"},
                        /*keep_alive=*/false));
      return;
    }
    if (parsed->content_length > options_.max_body_bytes) {
      SendAllFd(fd, SerializeResponse({.status = 413,
                                       .content_type = "text/plain",
                                       .body = "body too large\n"},
                                      /*keep_alive=*/false));
      return;
    }

    // 2. Read the body.
    size_t total = head_end + kHeadEnd.size() + parsed->content_length;
    while (buf.size() < total) {
      if (!RecvMore(fd, &buf)) return;
    }
    parsed->request.body =
        buf.substr(head_end + kHeadEnd.size(), parsed->content_length);
    buf.erase(0, total);  // keep any pipelined next request

    // 3. Dispatch; a throwing handler is a programming error upstream, but
    // answering 500 beats tearing down the whole server.
    HttpResponse resp;
    try {
      resp = handler_(parsed->request);
    } catch (...) {
      resp = {.status = 500,
              .content_type = "text/plain",
              .body = "internal error\n"};
    }
    if (!SendAllFd(fd, SerializeResponse(resp, parsed->keep_alive))) return;
    if (!parsed->keep_alive) return;
  }
}

// --- client ------------------------------------------------------------------

HttpConnection::~HttpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

Status HttpConnection::Connect() {
  if (fd_ >= 0) return Status::OK();
  auto fd = OpenClientSocket(options_.host, options_.port,
                             options_.recv_timeout_seconds);
  if (!fd.ok()) return fd.status();
  fd_ = fd.value();
  return Status::OK();
}

Status HttpConnection::SendAll(std::string_view data) {
  if (!SendAllFd(fd_, data)) {
    ::close(fd_);
    fd_ = -1;
    return Status::Internal("send failed: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<HttpResponse> HttpConnection::RoundTrip(const std::string& method,
                                               const std::string& target,
                                               std::string_view body,
                                               const std::string& content_type) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + options_.host + ":" + std::to_string(options_.port) +
             "\r\n";
  request += "Content-Type: " + content_type + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: keep-alive\r\n\r\n";
  request.append(body.data(), body.size());

  // A kept-alive socket may have been closed by the peer since the last
  // round-trip; retry the whole exchange once on a fresh connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    const bool reused = fd_ >= 0;
    VCHAIN_RETURN_IF_ERROR(Connect());
    if (!SendAll(request).ok()) {
      if (reused) continue;
      return Status::Internal("send failed");
    }

    std::string buf;
    size_t head_end;
    bool peer_closed = false;
    while ((head_end = buf.find(kHeadEnd)) == std::string::npos) {
      if (buf.size() > HttpServer::kMaxHeadBytes) {
        return Status::Corruption("response head too large");
      }
      if (!RecvMore(fd_, &buf)) {
        peer_closed = true;
        break;
      }
    }
    if (peer_closed) {
      ::close(fd_);
      fd_ = -1;
      if (reused && buf.empty()) continue;  // stale keep-alive, retry once
      return Status::Internal("connection closed mid-response");
    }

    std::string_view head = std::string_view(buf).substr(0, head_end);
    size_t line_end = head.find(kCrlf);
    std::string_view status_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);
    if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
      return Status::Corruption("malformed status line");
    }
    uint64_t status_code = 0;
    if (!ParseDecimalU64(status_line.substr(9, 3), &status_code)) {
      return Status::Corruption("malformed status code");
    }

    HttpResponse resp;
    resp.status = static_cast<int>(status_code);
    size_t content_length = 0;
    bool have_length = false;
    bool keep_alive = true;
    std::string_view rest = head.substr(
        line_end == std::string_view::npos ? head.size() : line_end + 2);
    while (!rest.empty()) {
      size_t eol = rest.find(kCrlf);
      std::string_view line =
          eol == std::string_view::npos ? rest : rest.substr(0, eol);
      rest = eol == std::string_view::npos ? std::string_view{}
                                           : rest.substr(eol + 2);
      if (line.empty()) continue;
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Status::Corruption("malformed response header");
      }
      std::string key = ToLower(line.substr(0, colon));
      std::string value(Trim(line.substr(colon + 1)));
      if (key == "content-length") {
        uint64_t v = 0;
        if (have_length || !ParseDecimalU64(value, &v) ||
            v > options_.max_response_bytes) {
          return Status::Corruption("bad content-length");
        }
        have_length = true;
        content_length = v;
      } else if (key == "content-type") {
        resp.content_type = value;
      } else if (key == "connection") {
        if (ToLower(value) == "close") keep_alive = false;
      } else {
        resp.headers.emplace_back(std::move(key), std::move(value));
      }
    }
    if (!have_length) {
      return Status::Corruption("response without content-length");
    }

    size_t total = head_end + kHeadEnd.size() + content_length;
    while (buf.size() < total) {
      if (!RecvMore(fd_, &buf)) {
        ::close(fd_);
        fd_ = -1;
        return Status::Internal("connection closed mid-body");
      }
    }
    resp.body = buf.substr(head_end + kHeadEnd.size(), content_length);
    if (!keep_alive) {
      ::close(fd_);
      fd_ = -1;
    }
    return resp;
  }
  return Status::Internal("request failed after reconnect");
}

}  // namespace vchain::net

// SpServer — a vchain::Service published over HTTP (the paper's SP as an
// actual network service; Fig 3's client/SP boundary becomes a socket).
//
// Endpoints:
//   POST /query        JSON query (net/wire.h)  ->  canonical response
//                      bytes verbatim as the body; X-Vchain-Vo-Bytes,
//                      X-Vchain-Results, X-Vchain-Engine metadata headers
//   POST /query_batch  {"queries":[...]}        ->  binary batch frame
//   GET  /headers?from=&to=                     ->  binary header page
//                      (X-Vchain-Tip = chain height; pages are capped, the
//                      client loops until its light client reaches the tip)
//   GET  /stats        service stats as JSON
//   GET  /metrics      Prometheus text exposition (version 0.0.4) of the
//                      process-wide metrics registry: store, service, and
//                      HTTP tiers plus the service-state gauges this server
//                      exports while running (block height, degraded flag,
//                      cache hit/miss counts)
//   GET  /healthz      "ok\n" + X-Vchain-Engine (liveness probe); 503
//                      "degraded: ..." once the service is read-only after
//                      a storage fault — a load balancer drains writes but
//                      queries keep serving
//   GET  /debug/traces retained span trees (sampled + slowest) as JSON
//   GET  /debug/events the process flight recorder's recent-event ring
//   GET  /debug/config effective ServiceOptions/ChainConfig with per-field
//                      provenance ("default" vs "set")
//                      — all three only with Options.debug_endpoints; they
//                      are the generic 404 otherwise
//   POST /subscribe    {"query": <query>} -> {"id": N, "cursor": H}; register
//                      a standing query, H is where to start polling /events
//   POST /unsubscribe  {"id": N} -> {"ok": true}
//   GET  /events?id=&cursor=&max=&wait_ms=
//                      the subscriber's events for heights >= cursor as a
//                      binary event frame (net/wire.h). With wait_ms and no
//                      events ready, the request parks on the event hub (no
//                      thread held) until an append produces events or the
//                      wait expires — long-poll. With `Accept:
//                      text/event-stream` the response is an SSE stream
//                      instead: one `id: <height>` + base64 `data:` record
//                      per notification, delivered as blocks are mined. A
//                      slow SSE consumer trips the per-connection stream
//                      buffer cap and is dropped; it reconnects with its
//                      last cursor and the service redelivers (bounded
//                      memory, at-least-once).
//
// Observability: send `X-Vchain-Trace: 1` on POST /query and the response
// carries the server's per-stage breakdown (core/query_trace.h) as JSON in
// an `X-Vchain-Trace` response header. The trace rides a header, never the
// body — the response bytes stay the canonical <R, VO> encoding verbatim,
// bit-identical with tracing on or off, so verification is unaffected.
// Queries slower than Options.slow_query_ms are logged at warn level with
// the same stage breakdown and the ambient request id.
//
// Availability: the embedded HttpServer enforces the connection cap, per-IP
// rate limit, and slow-loris timeouts (HttpServer::Options); Drain() is the
// graceful shutdown used by vchain_spd's signal handler — stop accepting,
// finish in-flight requests, then a final service Sync().
//
// The server is a thin routing shim: all SP semantics live in
// vchain::Service, whose Query path is already thread-safe under
// concurrent callers — the HTTP workers call straight into it, no extra
// locking. Nothing returned here needs to be trusted; clients verify the
// response bytes against their own light-client headers.

#ifndef VCHAIN_NET_SP_SERVER_H_
#define VCHAIN_NET_SP_SERVER_H_

#include <memory>

#include "api/service.h"
#include "common/metrics.h"
#include "net/http.h"

namespace vchain::net {

class SpServer {
 public:
  struct Options {
    HttpServer::Options http;
    /// Cap on GET /headers page size (clients page; see SpClient).
    size_t max_headers_per_page = 4096;
    /// Queries slower than this (server-side, serialization included) are
    /// logged at warn level with their stage breakdown. 0 disables.
    uint64_t slow_query_ms = 0;
    /// Serve GET /debug/traces (retained span trees), /debug/events (the
    /// flight-recorder ring), and /debug/config (effective configuration
    /// with provenance). Off by default so the public surface is unchanged:
    /// the routes answer the generic 404 when disabled.
    bool debug_endpoints = false;
    /// Cap on a GET /events long-poll park (`wait_ms` is clamped to this);
    /// bounds how long a drained server waits on idle subscribers.
    uint64_t max_events_wait_ms = 30000;
  };

  /// Start serving `service` (not owned; must outlive the server).
  static Result<std::unique_ptr<SpServer>> Start(api::Service* service,
                                                 Options options);

  ~SpServer();

  /// Hard stop: abort in-flight requests (parked /events waiters are
  /// completed with whatever their cursor can see first).
  void Stop();

  /// Graceful stop: finish parked /events waiters, stop accepting, finish
  /// in-flight requests, then fsync the service's store so everything
  /// served as durable actually is. Returns the final Sync status.
  Status Drain(int timeout_seconds = 10);

  uint16_t port() const { return http_->port(); }
  HttpServerStats http_stats() const { return http_->stats(); }

 private:
  /// Parks long-poll and SSE /events waiters off-thread and completes them
  /// when Service::Append reports a new tip (or their wait expires).
  struct EventHub;

  SpServer();
  void Handle(const HttpRequest& req, Responder responder);
  HttpResponse HandleSync(const HttpRequest& req) const;
  HttpResponse HandleQuery(const HttpRequest& req) const;
  void HandleEvents(const HttpRequest& req, Responder responder);
  /// Deregister the ServiceStats collector from the registry (idempotent).
  /// Must happen before the Service can die — the collector reads it.
  void RemoveCollector();
  /// Detach the append listener and finish every parked waiter (idempotent).
  void ShutdownHub();

  api::Service* service_ = nullptr;
  Options options_;
  std::unique_ptr<HttpServer> http_;
  std::unique_ptr<EventHub> hub_;
  metrics::Registry* registry_ = nullptr;
  size_t collector_id_ = 0;
  bool collector_registered_ = false;
};

}  // namespace vchain::net

#endif  // VCHAIN_NET_SP_SERVER_H_

// The SP wire protocol's message codec (framing only — transport lives in
// net/http.h, endpoint routing in net/sp_server.h).
//
// Design rule: *queries travel as JSON, proofs travel as the canonical
// binary bytes.* A query is small, human-authored, and convenient to build
// from any language, so `POST /query` takes the JSON form below. A response
// is dominated by the VO, whose canonical serialization
// (api::QueryResult::response_bytes) is already the bytes the verifier
// checks — re-encoding it would only add surface for bugs, so it crosses
// the wire verbatim as the HTTP body and the client verifies exactly what
// it received. Trust ends at the socket: nothing the server sends is
// believed until Service::Verify accepts it against light-client headers.
//
//   query JSON:   {"window": [ts, te],
//                  "ranges": [{"dim": 0, "lo": 200, "hi": 250}],
//                  "cnf": [["Sedan"], ["Benz", "BMW"]]}
//   batch JSON:   {"queries": [<query>, ...]}
//
// Batch responses and header pages are binary frames over common/serde.h
// with the same hostile-input discipline as the rest of the library: every
// length is bounds-checked against the bytes actually present, truncation
// and byte flips decode to Status::Corruption, and caps below bound what a
// malicious peer can make us allocate (tests/net/wire_codec_test.cc sweeps
// all of it).

#ifndef VCHAIN_NET_WIRE_H_
#define VCHAIN_NET_WIRE_H_

#include <string>
#include <string_view>
#include <vector>

#include "api/service.h"
#include "chain/header.h"
#include "core/query.h"

namespace vchain::net {

// --- request framing (JSON) ---------------------------------------------------

/// Hard caps on what a query request may carry. Generous for real queries,
/// small enough that a hostile body cannot force large allocations.
inline constexpr size_t kMaxWireRanges = 64;
inline constexpr size_t kMaxWireClauses = 256;
inline constexpr size_t kMaxWireKeywordsPerClause = 256;
inline constexpr size_t kMaxWireKeywordBytes = 4096;
inline constexpr size_t kMaxWireBatchQueries = 1024;

std::string QueryToJson(const core::Query& q);
Result<core::Query> QueryFromJson(std::string_view json);

std::string BatchRequestToJson(const std::vector<core::Query>& queries);
Result<std::vector<core::Query>> BatchRequestFromJson(std::string_view json);

// --- response framing (binary) ------------------------------------------------

/// One batch item: either the canonical response bytes or the per-query
/// failure status, in input order.
struct WireBatchItem {
  Status status;
  Bytes response_bytes;  ///< empty unless status.ok()
};

/// frame := count:u32 | item*  ;  item := ok:u8 | (bytes | code:u8 + msg)
Bytes EncodeBatchResponse(const std::vector<WireBatchItem>& items);
Result<std::vector<WireBatchItem>> DecodeBatchResponse(ByteSpan frame);

/// Header page: count:u32 | count × 104-byte canonical headers. `tip` rides
/// in an HTTP header (X-Vchain-Tip), not the frame.
inline constexpr size_t kMaxWireHeadersPerPage = 4096;
Bytes EncodeHeaderPage(const std::vector<chain::BlockHeader>& headers);
Result<std::vector<chain::BlockHeader>> DecodeHeaderPage(ByteSpan frame);

// --- subscriptions (JSON control, binary event frames) -------------------------
//
// Control-plane messages are JSON (small, human-authored, query inside);
// notifications cross the wire as their canonical binary bytes inside a
// length-prefixed frame — the client verifies exactly the bytes it
// received, same as query responses.
//
//   subscribe JSON:    {"query": <query>}        ->  {"id": N, "cursor": H}
//   unsubscribe JSON:  {"id": N}                 ->  {"ok": true}
//   event frame:       count:u32 | next_cursor:u64 | redelivered:u8 |
//                      count × (len:u32 | notification bytes)

/// What POST /subscribe answers: the subscription id plus the cursor (block
/// height) to start polling GET /events from.
struct WireSubscription {
  uint32_t id = 0;
  uint64_t cursor = 0;
};

std::string SubscribeRequestToJson(const core::Query& q);
Result<core::Query> SubscribeRequestFromJson(std::string_view json);
std::string SubscribeResponseToJson(const WireSubscription& sub);
Result<WireSubscription> SubscribeResponseFromJson(std::string_view json);

std::string UnsubscribeRequestToJson(uint32_t id);
Result<uint32_t> UnsubscribeRequestFromJson(std::string_view json);

/// Cap on events per GET /events frame (the server also honors a smaller
/// `max` query parameter).
inline constexpr size_t kMaxWireEventsPerFrame = 1024;

/// Encode one EventsSince batch. Only `notification_bytes` crosses the
/// wire; the decoded events carry empty query_id/height/objects and the
/// client re-derives them with Service::DecodeNotification — the bytes
/// stay canonical end to end.
Bytes EncodeEventFrame(const api::SubscriptionEventBatch& batch);
Result<api::SubscriptionEventBatch> DecodeEventFrame(ByteSpan frame);

/// Standard base64 (RFC 4648, '+'/'/' alphabet, '=' padding) — how binary
/// notification bytes ride inside text/event-stream SSE `data:` lines.
std::string Base64Encode(ByteSpan bytes);
Result<Bytes> Base64Decode(std::string_view text);

// --- stats (JSON) --------------------------------------------------------------

std::string StatsToJson(const api::ServiceStats& stats);
Result<api::ServiceStats> StatsFromJson(std::string_view json);

// --- status taxonomy over the wire ---------------------------------------------

uint8_t StatusCodeToWire(Status::Code code);
Result<Status::Code> StatusCodeFromWire(uint8_t wire);

/// HTTP status an endpoint answers with for a failed Service call:
/// InvalidArgument -> 400, NotFound -> 404, everything else -> 500.
int HttpStatusFor(const Status& st);

}  // namespace vchain::net

#endif  // VCHAIN_NET_WIRE_H_

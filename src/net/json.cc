#include "net/json.h"

#include <cstdio>

namespace vchain::net {

JsonValue JsonValue::Bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::Number(uint64_t v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::Str(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::Array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::Object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonValue::Dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      out = std::to_string(number_);
      break;
    case Kind::kString:
      AppendJsonString(string_, &out);
      break;
    case Kind::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].Dump();
      }
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendJsonString(members_[i].first, &out);
        out.push_back(':');
        out += members_[i].second.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    VCHAIN_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters after value");
    }
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxJsonDepth) {
      return Status::InvalidArgument("json: nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        VCHAIN_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Status::InvalidArgument("json: bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Status::InvalidArgument("json: bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Status::InvalidArgument("json: bad literal");
      default:
        if (c >= '0' && c <= '9') return ParseNumber(out);
        return Status::InvalidArgument("json: unexpected character");
    }
  }

  Status ParseNumber(JsonValue* out) {
    // Strict subset: non-negative integers in u64 range, no leading zeros
    // (other than the single digit 0), no fraction, no exponent.
    size_t start = pos_;
    uint64_t v = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      uint64_t digit = static_cast<uint64_t>(text_[pos_] - '0');
      if (v > (UINT64_MAX - digit) / 10) {
        return Status::InvalidArgument("json: integer overflows u64");
      }
      v = v * 10 + digit;
      ++pos_;
    }
    size_t len = pos_ - start;
    if (len == 0) return Status::InvalidArgument("json: bad number");
    if (len > 1 && text_[start] == '0') {
      return Status::InvalidArgument("json: leading zero");
    }
    if (pos_ < text_.size()) {
      char next = text_[pos_];
      if (next == '.' || next == 'e' || next == 'E' || next == '-' ||
          next == '+') {
        return Status::InvalidArgument(
            "json: only unsigned integers are accepted");
      }
    }
    *out = JsonValue::Number(v);
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Status::InvalidArgument("json: truncated \\u escape");
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      uint32_t nibble;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::InvalidArgument("json: bad \\u escape digit");
      }
      v = (v << 4) | nibble;
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::InvalidArgument("json: expected string");
    out->clear();
    for (;;) {
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("json: unterminated string");
      }
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) {
        return Status::InvalidArgument("json: raw control byte in string");
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("json: truncated escape");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          VCHAIN_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Status::InvalidArgument("json: lone high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            VCHAIN_RETURN_IF_ERROR(ParseHex4(&lo));
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Status::InvalidArgument("json: bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Status::InvalidArgument("json: lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Status::InvalidArgument("json: bad escape character");
      }
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    Consume('[');
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue item;
      VCHAIN_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->mutable_items()->push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) {
        return Status::InvalidArgument("json: expected ',' or ']'");
      }
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    Consume('{');
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      VCHAIN_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Status::InvalidArgument("json: expected ':'");
      JsonValue value;
      VCHAIN_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      if (out->Find(key) != nullptr) {
        return Status::InvalidArgument("json: duplicate object key");
      }
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) {
        return Status::InvalidArgument("json: expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace vchain::net

#include "net/wire.h"

#include "common/serde.h"
#include "net/json.h"

namespace vchain::net {

namespace {

/// Require member `key` of `obj` with kind `kind`; InvalidArgument otherwise.
Result<const JsonValue*> Member(const JsonValue& obj, const std::string& key,
                                JsonValue::Kind kind) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    return Status::InvalidArgument("wire: missing \"" + key + "\"");
  }
  if (v->kind() != kind) {
    return Status::InvalidArgument("wire: wrong type for \"" + key + "\"");
  }
  return v;
}

JsonValue QueryToJsonValue(const core::Query& q) {
  JsonValue obj = JsonValue::Object();
  JsonValue window = JsonValue::Array();
  window.mutable_items()->push_back(JsonValue::Number(q.time_start));
  window.mutable_items()->push_back(JsonValue::Number(q.time_end));
  obj.Set("window", std::move(window));
  JsonValue ranges = JsonValue::Array();
  for (const core::RangePredicate& r : q.ranges) {
    JsonValue range = JsonValue::Object();
    range.Set("dim", JsonValue::Number(r.dim));
    range.Set("lo", JsonValue::Number(r.lo));
    range.Set("hi", JsonValue::Number(r.hi));
    ranges.mutable_items()->push_back(std::move(range));
  }
  obj.Set("ranges", std::move(ranges));
  JsonValue cnf = JsonValue::Array();
  for (const auto& clause : q.keyword_cnf) {
    JsonValue or_clause = JsonValue::Array();
    for (const std::string& kw : clause) {
      or_clause.mutable_items()->push_back(JsonValue::Str(kw));
    }
    cnf.mutable_items()->push_back(std::move(or_clause));
  }
  obj.Set("cnf", std::move(cnf));
  return obj;
}

Result<core::Query> QueryFromJsonValue(const JsonValue& obj) {
  if (!obj.is_object()) {
    return Status::InvalidArgument("wire: query must be a JSON object");
  }
  core::Query q;

  auto window = Member(obj, "window", JsonValue::Kind::kArray);
  if (!window.ok()) return window.status();
  const auto& w = window.value()->items();
  if (w.size() != 2 || !w[0].is_number() || !w[1].is_number()) {
    return Status::InvalidArgument("wire: \"window\" must be [ts, te]");
  }
  q.time_start = w[0].as_number();
  q.time_end = w[1].as_number();

  auto ranges = Member(obj, "ranges", JsonValue::Kind::kArray);
  if (!ranges.ok()) return ranges.status();
  if (ranges.value()->items().size() > kMaxWireRanges) {
    return Status::InvalidArgument("wire: too many ranges");
  }
  for (const JsonValue& rv : ranges.value()->items()) {
    if (!rv.is_object()) {
      return Status::InvalidArgument("wire: range must be an object");
    }
    auto dim = Member(rv, "dim", JsonValue::Kind::kNumber);
    auto lo = Member(rv, "lo", JsonValue::Kind::kNumber);
    auto hi = Member(rv, "hi", JsonValue::Kind::kNumber);
    if (!dim.ok()) return dim.status();
    if (!lo.ok()) return lo.status();
    if (!hi.ok()) return hi.status();
    if (dim.value()->as_number() > UINT32_MAX) {
      return Status::InvalidArgument("wire: range dim overflows u32");
    }
    q.ranges.push_back(core::RangePredicate{
        static_cast<uint32_t>(dim.value()->as_number()),
        lo.value()->as_number(), hi.value()->as_number()});
  }

  auto cnf = Member(obj, "cnf", JsonValue::Kind::kArray);
  if (!cnf.ok()) return cnf.status();
  if (cnf.value()->items().size() > kMaxWireClauses) {
    return Status::InvalidArgument("wire: too many CNF clauses");
  }
  for (const JsonValue& cv : cnf.value()->items()) {
    if (!cv.is_array()) {
      return Status::InvalidArgument("wire: CNF clause must be an array");
    }
    if (cv.items().size() > kMaxWireKeywordsPerClause) {
      return Status::InvalidArgument("wire: OR-clause too large");
    }
    std::vector<std::string> clause;
    for (const JsonValue& kw : cv.items()) {
      if (!kw.is_string()) {
        return Status::InvalidArgument("wire: keyword must be a string");
      }
      if (kw.as_string().size() > kMaxWireKeywordBytes) {
        return Status::InvalidArgument("wire: keyword too long");
      }
      clause.push_back(kw.as_string());
    }
    q.keyword_cnf.push_back(std::move(clause));
  }
  // Structural validity against the chain's schema (range bounds, known
  // dimensions, no empty OR-clause) is the server's job — it owns the
  // schema; the codec only enforces shape and size.
  return q;
}

}  // namespace

std::string QueryToJson(const core::Query& q) {
  return QueryToJsonValue(q).Dump();
}

Result<core::Query> QueryFromJson(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  return QueryFromJsonValue(parsed.value());
}

std::string BatchRequestToJson(const std::vector<core::Query>& queries) {
  JsonValue obj = JsonValue::Object();
  JsonValue arr = JsonValue::Array();
  for (const core::Query& q : queries) {
    arr.mutable_items()->push_back(QueryToJsonValue(q));
  }
  obj.Set("queries", std::move(arr));
  return obj.Dump();
}

Result<std::vector<core::Query>> BatchRequestFromJson(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().is_object()) {
    return Status::InvalidArgument("wire: batch must be a JSON object");
  }
  auto queries = Member(parsed.value(), "queries", JsonValue::Kind::kArray);
  if (!queries.ok()) return queries.status();
  if (queries.value()->items().size() > kMaxWireBatchQueries) {
    return Status::InvalidArgument("wire: batch too large");
  }
  std::vector<core::Query> out;
  out.reserve(queries.value()->items().size());
  for (const JsonValue& qv : queries.value()->items()) {
    auto q = QueryFromJsonValue(qv);
    if (!q.ok()) return q.status();
    out.push_back(q.TakeValue());
  }
  return out;
}

Bytes EncodeBatchResponse(const std::vector<WireBatchItem>& items) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const WireBatchItem& item : items) {
    w.PutBool(item.status.ok());
    if (item.status.ok()) {
      w.PutBytes(ByteSpan(item.response_bytes.data(),
                          item.response_bytes.size()));
    } else {
      w.PutU8(StatusCodeToWire(item.status.code()));
      w.PutString(item.status.message());
    }
  }
  return w.TakeBytes();
}

Result<std::vector<WireBatchItem>> DecodeBatchResponse(ByteSpan frame) {
  ByteReader r(frame);
  uint32_t count = 0;
  VCHAIN_RETURN_IF_ERROR(r.GetU32(&count));
  // Each item is at least the ok byte + a u32 length (or code + length).
  if (count > kMaxWireBatchQueries || count > r.Remaining()) {
    return Status::Corruption("batch frame: item count exceeds payload");
  }
  std::vector<WireBatchItem> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WireBatchItem item;
    bool ok = false;
    VCHAIN_RETURN_IF_ERROR(r.GetBool(&ok));
    if (ok) {
      VCHAIN_RETURN_IF_ERROR(r.GetBytes(&item.response_bytes));
    } else {
      uint8_t code = 0;
      VCHAIN_RETURN_IF_ERROR(r.GetU8(&code));
      auto decoded = StatusCodeFromWire(code);
      if (!decoded.ok()) return decoded.status();
      std::string msg;
      VCHAIN_RETURN_IF_ERROR(r.GetString(&msg, /*max_len=*/1u << 16));
      switch (decoded.value()) {
        case Status::Code::kInvalidArgument:
          item.status = Status::InvalidArgument(std::move(msg));
          break;
        case Status::Code::kNotFound:
          item.status = Status::NotFound(std::move(msg));
          break;
        case Status::Code::kCorruption:
          item.status = Status::Corruption(std::move(msg));
          break;
        case Status::Code::kVerifyFailed:
          item.status = Status::VerifyFailed(std::move(msg));
          break;
        case Status::Code::kNotSupported:
          item.status = Status::NotSupported(std::move(msg));
          break;
        default:
          item.status = Status::Internal(std::move(msg));
          break;
      }
    }
    out.push_back(std::move(item));
  }
  if (r.Remaining() != 0) {
    return Status::Corruption("batch frame: trailing bytes");
  }
  return out;
}

Bytes EncodeHeaderPage(const std::vector<chain::BlockHeader>& headers) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(headers.size()));
  for (const chain::BlockHeader& h : headers) h.Serialize(&w);
  return w.TakeBytes();
}

Result<std::vector<chain::BlockHeader>> DecodeHeaderPage(ByteSpan frame) {
  ByteReader r(frame);
  uint32_t count = 0;
  VCHAIN_RETURN_IF_ERROR(r.GetU32(&count));
  if (count > kMaxWireHeadersPerPage ||
      static_cast<size_t>(count) * chain::BlockHeader::kSerializedSize >
          r.Remaining()) {
    return Status::Corruption("header page: count exceeds payload");
  }
  std::vector<chain::BlockHeader> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    chain::BlockHeader h;
    VCHAIN_RETURN_IF_ERROR(chain::BlockHeader::Deserialize(&r, &h));
    out.push_back(h);
  }
  if (r.Remaining() != 0) {
    return Status::Corruption("header page: trailing bytes");
  }
  return out;
}

std::string SubscribeRequestToJson(const core::Query& q) {
  JsonValue obj = JsonValue::Object();
  obj.Set("query", QueryToJsonValue(q));
  return obj.Dump();
}

Result<core::Query> SubscribeRequestFromJson(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().is_object()) {
    return Status::InvalidArgument("wire: subscribe must be a JSON object");
  }
  auto query = Member(parsed.value(), "query", JsonValue::Kind::kObject);
  if (!query.ok()) return query.status();
  return QueryFromJsonValue(*query.value());
}

std::string SubscribeResponseToJson(const WireSubscription& sub) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", JsonValue::Number(sub.id));
  obj.Set("cursor", JsonValue::Number(sub.cursor));
  return obj.Dump();
}

Result<WireSubscription> SubscribeResponseFromJson(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().is_object()) {
    return Status::InvalidArgument(
        "wire: subscribe response must be a JSON object");
  }
  auto id = Member(parsed.value(), "id", JsonValue::Kind::kNumber);
  if (!id.ok()) return id.status();
  if (id.value()->as_number() > UINT32_MAX) {
    return Status::InvalidArgument("wire: subscription id overflows u32");
  }
  auto cursor = Member(parsed.value(), "cursor", JsonValue::Kind::kNumber);
  if (!cursor.ok()) return cursor.status();
  WireSubscription out;
  out.id = static_cast<uint32_t>(id.value()->as_number());
  out.cursor = cursor.value()->as_number();
  return out;
}

std::string UnsubscribeRequestToJson(uint32_t id) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", JsonValue::Number(id));
  return obj.Dump();
}

Result<uint32_t> UnsubscribeRequestFromJson(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().is_object()) {
    return Status::InvalidArgument("wire: unsubscribe must be a JSON object");
  }
  auto id = Member(parsed.value(), "id", JsonValue::Kind::kNumber);
  if (!id.ok()) return id.status();
  if (id.value()->as_number() > UINT32_MAX) {
    return Status::InvalidArgument("wire: subscription id overflows u32");
  }
  return static_cast<uint32_t>(id.value()->as_number());
}

Bytes EncodeEventFrame(const api::SubscriptionEventBatch& batch) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(batch.events.size()));
  w.PutU64(batch.next_cursor);
  w.PutU8(batch.redelivered ? 1 : 0);
  for (const api::SubscriptionEvent& ev : batch.events) {
    w.PutBytes(ByteSpan(ev.notification_bytes.data(),
                        ev.notification_bytes.size()));
  }
  return w.TakeBytes();
}

Result<api::SubscriptionEventBatch> DecodeEventFrame(ByteSpan frame) {
  ByteReader r(frame);
  uint32_t count = 0;
  VCHAIN_RETURN_IF_ERROR(r.GetU32(&count));
  api::SubscriptionEventBatch batch;
  VCHAIN_RETURN_IF_ERROR(r.GetU64(&batch.next_cursor));
  uint8_t redelivered = 0;
  VCHAIN_RETURN_IF_ERROR(r.GetU8(&redelivered));
  if (redelivered > 1) {
    return Status::Corruption("event frame: bad redelivered flag");
  }
  batch.redelivered = redelivered != 0;
  // Each event is at least a u32 length prefix.
  if (count > kMaxWireEventsPerFrame || count * 4ull > r.Remaining()) {
    return Status::Corruption("event frame: count exceeds payload");
  }
  batch.events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    api::SubscriptionEvent ev;
    VCHAIN_RETURN_IF_ERROR(r.GetBytes(&ev.notification_bytes));
    // query_id / height / objects are re-derived from the canonical bytes
    // by Service::DecodeNotification — never trusted from framing.
    batch.events.push_back(std::move(ev));
  }
  if (r.Remaining() != 0) {
    return Status::Corruption("event frame: trailing bytes");
  }
  return batch;
}

namespace {
constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
}  // namespace

std::string Base64Encode(ByteSpan bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    uint32_t v = (static_cast<uint32_t>(bytes[i]) << 16) |
                 (static_cast<uint32_t>(bytes[i + 1]) << 8) |
                 static_cast<uint32_t>(bytes[i + 2]);
    out.push_back(kB64Alphabet[(v >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 12) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 6) & 0x3f]);
    out.push_back(kB64Alphabet[v & 0x3f]);
  }
  const size_t rest = bytes.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<uint32_t>(bytes[i]) << 16;
    out.push_back(kB64Alphabet[(v >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 12) & 0x3f]);
    out.append("==");
  } else if (rest == 2) {
    uint32_t v = (static_cast<uint32_t>(bytes[i]) << 16) |
                 (static_cast<uint32_t>(bytes[i + 1]) << 8);
    out.push_back(kB64Alphabet[(v >> 18) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 12) & 0x3f]);
    out.push_back(kB64Alphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return Status::Corruption("base64: length not a multiple of 4");
  }
  auto value_of = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    uint32_t v = 0;
    for (size_t j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal as the final one or two characters.
        if (!last || j < 2 || (j == 2 && text[i + 3] != '=')) {
          return Status::Corruption("base64: misplaced padding");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      const int d = value_of(c);
      if (d < 0) return Status::Corruption("base64: invalid character");
      v = (v << 6) | static_cast<uint32_t>(d);
    }
    out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<uint8_t>(v & 0xff));
  }
  return out;
}

std::string StatsToJson(const api::ServiceStats& stats) {
  JsonValue obj = JsonValue::Object();
  obj.Set("engine", JsonValue::Str(api::EngineKindName(stats.engine)));
  obj.Set("durable", JsonValue::Bool(stats.durable));
  obj.Set("degraded", JsonValue::Bool(stats.degraded));
  obj.Set("num_blocks", JsonValue::Number(stats.num_blocks));
  obj.Set("queries_served", JsonValue::Number(stats.queries_served));
  obj.Set("subscriptions_active", JsonValue::Number(stats.subscriptions_active));
  obj.Set("subscription_events_pending",
          JsonValue::Number(stats.subscription_events_pending));
  obj.Set("sub_matcher",
          JsonValue::Str(sub::MatcherModeName(stats.sub_matcher)));
  obj.Set("sub_checkpoint_seq", JsonValue::Number(stats.sub_checkpoint_seq));
  auto lru = [](const LruStats& s) {
    JsonValue v = JsonValue::Object();
    v.Set("hits", JsonValue::Number(s.hits));
    v.Set("misses", JsonValue::Number(s.misses));
    v.Set("evictions", JsonValue::Number(s.evictions));
    return v;
  };
  obj.Set("proof_cache", lru(stats.proof_cache));
  obj.Set("block_cache", lru(stats.block_cache));
  obj.Set("canary_verified", JsonValue::Number(stats.canary_verified));
  obj.Set("canary_failed", JsonValue::Number(stats.canary_failed));
  obj.Set("canary_skipped", JsonValue::Number(stats.canary_skipped));
  obj.Set("trace_ring_occupancy",
          JsonValue::Number(stats.trace_ring_occupancy));
  obj.Set("flight_recorder_seq",
          JsonValue::Number(stats.flight_recorder_seq));
  return obj.Dump();
}

Result<api::ServiceStats> StatsFromJson(std::string_view json) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& obj = parsed.value();
  if (!obj.is_object()) {
    return Status::InvalidArgument("wire: stats must be a JSON object");
  }
  api::ServiceStats stats;
  auto engine = Member(obj, "engine", JsonValue::Kind::kString);
  if (!engine.ok()) return engine.status();
  if (!api::EngineKindFromName(engine.value()->as_string(), &stats.engine)) {
    return Status::InvalidArgument("wire: unknown engine name");
  }
  auto u64 = [&obj](const std::string& key, uint64_t* out) -> Status {
    auto v = Member(obj, key, JsonValue::Kind::kNumber);
    if (!v.ok()) return v.status();
    *out = v.value()->as_number();
    return Status::OK();
  };
  auto durable = Member(obj, "durable", JsonValue::Kind::kBool);
  if (!durable.ok()) return durable.status();
  stats.durable = durable.value()->as_bool();
  // Optional for wire compatibility with pre-degraded-mode servers.
  auto degraded = Member(obj, "degraded", JsonValue::Kind::kBool);
  if (degraded.ok()) stats.degraded = degraded.value()->as_bool();
  VCHAIN_RETURN_IF_ERROR(u64("num_blocks", &stats.num_blocks));
  VCHAIN_RETURN_IF_ERROR(u64("queries_served", &stats.queries_served));
  VCHAIN_RETURN_IF_ERROR(
      u64("subscriptions_active", &stats.subscriptions_active));
  VCHAIN_RETURN_IF_ERROR(u64("subscription_events_pending",
                             &stats.subscription_events_pending));
  // Optional for wire compatibility with pre-matcher servers.
  auto matcher = Member(obj, "sub_matcher", JsonValue::Kind::kString);
  if (matcher.ok() && !sub::MatcherModeFromName(matcher.value()->as_string(),
                                                &stats.sub_matcher)) {
    return Status::InvalidArgument("wire: unknown sub matcher name");
  }
  auto ckpt_seq = Member(obj, "sub_checkpoint_seq", JsonValue::Kind::kNumber);
  if (ckpt_seq.ok()) stats.sub_checkpoint_seq = ckpt_seq.value()->as_number();
  auto lru = [&obj](const std::string& key, LruStats* out) -> Status {
    auto v = Member(obj, key, JsonValue::Kind::kObject);
    if (!v.ok()) return v.status();
    auto field = [&v](const std::string& k, uint64_t* dst) -> Status {
      auto f = Member(*v.value(), k, JsonValue::Kind::kNumber);
      if (!f.ok()) return f.status();
      *dst = f.value()->as_number();
      return Status::OK();
    };
    VCHAIN_RETURN_IF_ERROR(field("hits", &out->hits));
    VCHAIN_RETURN_IF_ERROR(field("misses", &out->misses));
    VCHAIN_RETURN_IF_ERROR(field("evictions", &out->evictions));
    return Status::OK();
  };
  VCHAIN_RETURN_IF_ERROR(lru("proof_cache", &stats.proof_cache));
  VCHAIN_RETURN_IF_ERROR(lru("block_cache", &stats.block_cache));
  // Optional for wire compatibility with pre-introspection-plane servers.
  auto opt_u64 = [&obj](const std::string& key, uint64_t* out) {
    auto v = Member(obj, key, JsonValue::Kind::kNumber);
    if (v.ok()) *out = v.value()->as_number();
  };
  opt_u64("canary_verified", &stats.canary_verified);
  opt_u64("canary_failed", &stats.canary_failed);
  opt_u64("canary_skipped", &stats.canary_skipped);
  opt_u64("trace_ring_occupancy", &stats.trace_ring_occupancy);
  opt_u64("flight_recorder_seq", &stats.flight_recorder_seq);
  return stats;
}

uint8_t StatusCodeToWire(Status::Code code) {
  return static_cast<uint8_t>(code);
}

Result<Status::Code> StatusCodeFromWire(uint8_t wire) {
  if (wire > static_cast<uint8_t>(Status::Code::kUnavailable) ||
      wire == static_cast<uint8_t>(Status::Code::kOk)) {
    return Status::Corruption("unknown wire status code");
  }
  return static_cast<Status::Code>(wire);
}

int HttpStatusFor(const Status& st) {
  if (st.ok()) return 200;
  if (st.IsInvalidArgument()) return 400;
  if (st.IsNotFound()) return 404;
  if (st.IsUnavailable()) return 503;
  return 500;
}

}  // namespace vchain::net

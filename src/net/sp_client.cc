#include "net/sp_client.h"

#include <utility>

#include "net/wire.h"

namespace vchain::net {

namespace {

/// Non-200 responses carry a text/plain Status::ToString body; surface the
/// SP's own taxonomy where the mapping is unambiguous.
Status StatusFromHttp(const HttpResponse& resp) {
  std::string body = resp.body;
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.pop_back();
  }
  switch (resp.status) {
    case 400: return Status::InvalidArgument("sp: " + body);
    case 404: return Status::NotFound("sp: " + body);
    default:
      return Status::Internal("sp: http " + std::to_string(resp.status) +
                              ": " + body);
  }
}

const std::string* FindHeader(const HttpResponse& resp, const std::string& key) {
  for (const auto& [k, v] : resp.headers) {
    if (k == key) return &v;  // client stores keys lower-cased
  }
  return nullptr;
}

}  // namespace

Result<std::unique_ptr<SpClient>> SpClient::Connect(Options options) {
  std::unique_ptr<SpClient> client(new SpClient());
  options.verify.store_dir.clear();  // verifier role: no chain state
  options.verify.retain_window = 0;
  auto verifier = api::Service::Open(options.verify);
  if (!verifier.ok()) return verifier.status();
  client->verifier_ = verifier.TakeValue();
  HttpConnection::Options http;
  http.host = options.host;
  http.port = options.port;
  http.max_response_bytes = options.max_response_bytes;
  http.recv_timeout_seconds = options.recv_timeout_seconds;
  client->http_ = std::make_unique<HttpConnection>(std::move(http));
  client->options_ = std::move(options);
  return client;
}

Result<api::QueryResult> SpClient::Query(const core::Query& q) {
  auto resp = http_->RoundTrip("POST", "/query", QueryToJson(q),
                               "application/json");
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  Bytes bytes(resp.value().body.begin(), resp.value().body.end());
  // DecodeResult re-derives objects/vo_bytes from the bytes themselves and
  // rejects trailing garbage — HTTP metadata is advisory only.
  return verifier_->DecodeResult(bytes);
}

Result<std::vector<Result<api::QueryResult>>> SpClient::QueryBatch(
    const std::vector<core::Query>& queries) {
  if (queries.size() > kMaxWireBatchQueries) {
    return Status::InvalidArgument("batch too large for one request");
  }
  auto resp = http_->RoundTrip("POST", "/query_batch",
                               BatchRequestToJson(queries),
                               "application/json");
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  auto items = DecodeBatchResponse(
      ByteSpan(reinterpret_cast<const uint8_t*>(resp.value().body.data()),
               resp.value().body.size()));
  if (!items.ok()) return items.status();
  if (items.value().size() != queries.size()) {
    return Status::Corruption("batch response count mismatch");
  }
  std::vector<Result<api::QueryResult>> out;
  out.reserve(items.value().size());
  for (WireBatchItem& item : items.value()) {
    if (item.status.ok()) {
      out.push_back(verifier_->DecodeResult(item.response_bytes));
    } else {
      out.push_back(Result<api::QueryResult>(std::move(item.status)));
    }
  }
  return out;
}

Status SpClient::SyncHeaders(chain::LightClient* light) {
  for (;;) {
    std::string target = "/headers?from=" + std::to_string(light->Height());
    auto resp = http_->RoundTrip("GET", target, "", "text/plain");
    if (!resp.ok()) return resp.status();
    if (resp.value().status != 200) return StatusFromHttp(resp.value());
    const std::string* tip_str = FindHeader(resp.value(), "x-vchain-tip");
    if (tip_str == nullptr) {
      return Status::Corruption("headers response missing X-Vchain-Tip");
    }
    uint64_t tip = 0;
    if (!ParseDecimalU64(*tip_str, &tip)) {
      return Status::Corruption("malformed X-Vchain-Tip");
    }
    auto page = DecodeHeaderPage(
        ByteSpan(reinterpret_cast<const uint8_t*>(resp.value().body.data()),
                 resp.value().body.size()));
    if (!page.ok()) return page.status();
    if (page.value().empty()) {
      if (light->Height() < tip) {
        return Status::Corruption("sp sent an empty header page below tip");
      }
      return Status::OK();  // caught up
    }
    for (const chain::BlockHeader& h : page.value()) {
      // SyncHeader re-validates height, linkage, timestamps, and consensus;
      // a forged header stops the sync here.
      VCHAIN_RETURN_IF_ERROR(light->SyncHeader(h));
    }
    if (light->Height() >= tip) return Status::OK();
  }
}

Status SpClient::Verify(const core::Query& q, const api::QueryResult& result,
                        const chain::LightClient& light) const {
  return verifier_->Verify(q, result, light);
}

Result<api::ServiceStats> SpClient::Stats() {
  auto resp = http_->RoundTrip("GET", "/stats", "", "text/plain");
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  return StatsFromJson(resp.value().body);
}

Status SpClient::Healthz() {
  auto resp = http_->RoundTrip("GET", "/healthz", "", "text/plain");
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  const std::string* engine = FindHeader(resp.value(), "x-vchain-engine");
  if (engine == nullptr ||
      *engine != api::EngineKindName(options_.verify.engine)) {
    return Status::VerifyFailed(
        "sp engine does not match the client's verification parameters");
  }
  return Status::OK();
}

}  // namespace vchain::net

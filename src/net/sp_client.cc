#include "net/sp_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <thread>
#include <utility>

#include "net/wire.h"

namespace vchain::net {

namespace {

/// Non-200 responses carry a text/plain Status::ToString body; surface the
/// SP's own taxonomy where the mapping is unambiguous.
Status StatusFromHttp(const HttpResponse& resp) {
  std::string body = resp.body;
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.pop_back();
  }
  switch (resp.status) {
    case 400: return Status::InvalidArgument("sp: " + body);
    case 404: return Status::NotFound("sp: " + body);
    case 429:
    case 503:
      // The SP's back-off answers: rate limit / overload shed / degraded
      // read-only mode. Retryable by construction.
      return Status::Unavailable("sp: http " + std::to_string(resp.status) +
                                 ": " + body);
    default:
      return Status::Internal("sp: http " + std::to_string(resp.status) +
                              ": " + body);
  }
}

const std::string* FindHeader(const HttpResponse& resp, const std::string& key) {
  for (const auto& [k, v] : resp.headers) {
    if (k == key) return &v;  // client stores keys lower-cased
  }
  return nullptr;
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

int64_t SpClient::ComputeBackoffMs(const RetryPolicy& policy, int attempt,
                                   uint64_t jitter) {
  double base = static_cast<double>(policy.initial_backoff_ms);
  for (int i = 1; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff_ms));
  int64_t cap = std::max<int64_t>(1, static_cast<int64_t>(base));
  // Uniform in [cap/2, cap]: enough spread to de-correlate a thundering
  // herd while still guaranteeing meaningful backoff.
  int64_t lo = cap / 2;
  return lo + static_cast<int64_t>(jitter % static_cast<uint64_t>(cap - lo + 1));
}

Result<HttpResponse> SpClient::Exchange(
    const std::string& method, const std::string& target,
    const std::string& body, const std::string& content_type, bool idempotent,
    bool retry_busy,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  const RetryPolicy& policy = options_.retry;
  const int max_attempts = std::max(1, policy.max_attempts);
  // One id per logical request, reused across retries: the server logs then
  // show each attempt of the same operation under the same correlation id.
  char request_id[17];
  snprintf(request_id, sizeof(request_id), "%016llx",
           static_cast<unsigned long long>(SplitMix64(&id_state_)));
  std::vector<std::pair<std::string, std::string>> headers;
  headers.reserve(extra_headers.size() + 1);
  headers.emplace_back("X-Request-Id", request_id);
  headers.insert(headers.end(), extra_headers.begin(), extra_headers.end());
  Status last = Status::Internal("unreachable");
  for (int attempt = 1;; ++attempt) {
    bool sent_on_wire = false;
    auto resp = http_->RoundTrip(method, target, body, content_type,
                                 &sent_on_wire, headers);
    int64_t server_wait_ms = -1;
    if (resp.ok()) {
      int code = resp.value().status;
      if (!retry_busy || (code != 429 && code != 503)) return resp;
      last = StatusFromHttp(resp.value());
      const std::string* ra = FindHeader(resp.value(), "retry-after");
      uint64_t seconds = 0;
      if (ra != nullptr && ParseDecimalU64(*ra, &seconds)) {
        seconds = std::min<uint64_t>(
            seconds, static_cast<uint64_t>(
                         std::max(0, policy.max_retry_after_seconds)));
        server_wait_ms = static_cast<int64_t>(seconds) * 1000;
      }
    } else {
      last = resp.status();
      if (!idempotent && sent_on_wire) {
        // The request may have reached the peer; re-sending could
        // double-apply. (All current endpoints are idempotent reads — this
        // branch guards future mutating endpoints.)
        return last;
      }
    }
    if (attempt >= max_attempts) return last;
    int64_t wait_ms = ComputeBackoffMs(policy, attempt, SplitMix64(&jitter_state_));
    wait_ms = std::max(wait_ms, server_wait_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  }
}

Result<std::unique_ptr<SpClient>> SpClient::Connect(Options options) {
  std::unique_ptr<SpClient> client(new SpClient());
  options.verify.store_dir.clear();  // verifier role: no chain state
  options.verify.retain_window = 0;
  auto verifier = api::Service::Open(options.verify);
  if (!verifier.ok()) return verifier.status();
  client->verifier_ = verifier.TakeValue();
  HttpConnection::Options http;
  http.host = options.host;
  http.port = options.port;
  http.max_response_bytes = options.max_response_bytes;
  http.recv_timeout_seconds = options.recv_timeout_seconds;
  http.connect_timeout_seconds = options.connect_timeout_seconds;
  client->http_ = std::make_unique<HttpConnection>(std::move(http));
  client->jitter_state_ = options.retry.jitter_seed;
  // Request ids must differ across client processes (they correlate server
  // logs), so unlike backoff jitter they are seeded from entropy.
  client->id_state_ = (static_cast<uint64_t>(std::random_device{}()) << 32) ^
                      std::random_device{}() ^ options.retry.jitter_seed;
  client->options_ = std::move(options);
  return client;
}

Result<api::QueryResult> SpClient::Query(const core::Query& q,
                                         std::string* server_trace_json) {
  std::vector<std::pair<std::string, std::string>> extra;
  if (server_trace_json != nullptr) {
    server_trace_json->clear();
    extra.emplace_back("X-Vchain-Trace", "1");
  }
  auto resp = Exchange("POST", "/query", QueryToJson(q), "application/json",
                       /*idempotent=*/true, /*retry_busy=*/true, extra);
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  if (server_trace_json != nullptr) {
    const std::string* t = FindHeader(resp.value(), "x-vchain-trace");
    if (t != nullptr) *server_trace_json = *t;
  }
  Bytes bytes(resp.value().body.begin(), resp.value().body.end());
  // DecodeResult re-derives objects/vo_bytes from the bytes themselves and
  // rejects trailing garbage — HTTP metadata is advisory only.
  return verifier_->DecodeResult(bytes);
}

Result<std::vector<Result<api::QueryResult>>> SpClient::QueryBatch(
    const std::vector<core::Query>& queries) {
  if (queries.size() > kMaxWireBatchQueries) {
    return Status::InvalidArgument("batch too large for one request");
  }
  auto resp = Exchange("POST", "/query_batch", BatchRequestToJson(queries),
                       "application/json");
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  auto items = DecodeBatchResponse(
      ByteSpan(reinterpret_cast<const uint8_t*>(resp.value().body.data()),
               resp.value().body.size()));
  if (!items.ok()) return items.status();
  if (items.value().size() != queries.size()) {
    return Status::Corruption("batch response count mismatch");
  }
  std::vector<Result<api::QueryResult>> out;
  out.reserve(items.value().size());
  for (WireBatchItem& item : items.value()) {
    if (item.status.ok()) {
      out.push_back(verifier_->DecodeResult(item.response_bytes));
    } else {
      out.push_back(Result<api::QueryResult>(std::move(item.status)));
    }
  }
  return out;
}

Status SpClient::SyncHeaders(chain::LightClient* light) {
  for (;;) {
    std::string target = "/headers?from=" + std::to_string(light->Height());
    auto resp = Exchange("GET", target, "", "text/plain");
    if (!resp.ok()) return resp.status();
    if (resp.value().status != 200) return StatusFromHttp(resp.value());
    const std::string* tip_str = FindHeader(resp.value(), "x-vchain-tip");
    if (tip_str == nullptr) {
      return Status::Corruption("headers response missing X-Vchain-Tip");
    }
    uint64_t tip = 0;
    if (!ParseDecimalU64(*tip_str, &tip)) {
      return Status::Corruption("malformed X-Vchain-Tip");
    }
    auto page = DecodeHeaderPage(
        ByteSpan(reinterpret_cast<const uint8_t*>(resp.value().body.data()),
                 resp.value().body.size()));
    if (!page.ok()) return page.status();
    if (page.value().empty()) {
      if (light->Height() < tip) {
        return Status::Corruption("sp sent an empty header page below tip");
      }
      return Status::OK();  // caught up
    }
    for (const chain::BlockHeader& h : page.value()) {
      // SyncHeader re-validates height, linkage, timestamps, and consensus;
      // a forged header stops the sync here.
      VCHAIN_RETURN_IF_ERROR(light->SyncHeader(h));
    }
    if (light->Height() >= tip) return Status::OK();
  }
}

Status SpClient::Verify(const core::Query& q, const api::QueryResult& result,
                        const chain::LightClient& light) const {
  return verifier_->Verify(q, result, light);
}

Result<SpClient::SubscriptionHandle> SpClient::Subscribe(const core::Query& q) {
  // Not idempotent: a retry of a request that reached the wire could
  // register the query twice (two ids, double billing). Transport errors
  // after send therefore surface instead of re-sending; 429/503 answers
  // mean the SP rejected it, so retrying those stays safe.
  auto resp = Exchange("POST", "/subscribe", SubscribeRequestToJson(q),
                       "application/json", /*idempotent=*/false);
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  auto sub = SubscribeResponseFromJson(resp.value().body);
  if (!sub.ok()) return sub.status();
  SubscriptionHandle handle;
  handle.client_ = this;
  handle.id_ = sub.value().id;
  handle.cursor_ = sub.value().cursor;
  handle.query_ = q;
  return handle;
}

Result<std::vector<api::SubscriptionEvent>>
SpClient::SubscriptionHandle::Poll(chain::LightClient* light, int wait_ms,
                                   size_t max_events) {
  return client_->PollSubscription(this, light, wait_ms, max_events);
}

Status SpClient::SubscriptionHandle::Stream(
    chain::LightClient* light,
    const std::function<bool(const api::SubscriptionEvent&)>& callback,
    int wait_ms) {
  for (;;) {
    auto events = Poll(light, wait_ms);
    if (!events.ok()) return events.status();
    for (const api::SubscriptionEvent& ev : events.value()) {
      if (!callback(ev)) return Status::OK();
    }
  }
}

Status SpClient::SubscriptionHandle::Unsubscribe() {
  auto resp = client_->Exchange("POST", "/unsubscribe",
                                UnsubscribeRequestToJson(id_),
                                "application/json");
  if (!resp.ok()) return resp.status();
  if (resp.value().status == 200) return Status::OK();
  Status st = StatusFromHttp(resp.value());
  // Already gone — the goal state. Covers a retry whose first attempt
  // landed, and an SP that dropped the id across a restart.
  if (st.IsNotFound()) return Status::OK();
  return st;
}

Result<std::vector<api::SubscriptionEvent>> SpClient::PollSubscription(
    SubscriptionHandle* handle, chain::LightClient* light, int wait_ms,
    size_t max_events) {
  max_events = std::max<size_t>(1, std::min(max_events, kMaxWireEventsPerFrame));
  std::string target = "/events?id=" + std::to_string(handle->id_) +
                       "&cursor=" + std::to_string(handle->cursor_) +
                       "&max=" + std::to_string(max_events) +
                       "&wait_ms=" + std::to_string(std::max(0, wait_ms));
  // Idempotent: the cursor only advances after a frame fully verifies, so
  // a retried poll re-reads the same window (the server redelivers).
  auto resp = Exchange("GET", target, "", "text/plain");
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  auto frame = DecodeEventFrame(
      ByteSpan(reinterpret_cast<const uint8_t*>(resp.value().body.data()),
               resp.value().body.size()));
  if (!frame.ok()) return frame.status();
  std::vector<api::SubscriptionEvent> out;
  out.reserve(frame.value().events.size());
  // Dedup floor: at-least-once wire delivery means a height can arrive
  // twice (reconnect, checkpoint replay); anything below the floor has
  // already been surfaced.
  uint64_t floor = handle->cursor_;
  for (const api::SubscriptionEvent& wire_ev : frame.value().events) {
    // Everything is re-derived from the canonical bytes — the frame's
    // metadata is advisory, the bytes are what gets verified.
    auto ev = verifier_->DecodeNotification(wire_ev.notification_bytes);
    if (!ev.ok()) return ev.status();
    if (ev.value().query_id != handle->id_) {
      return Status::VerifyFailed(
          "sp delivered a notification for a different subscription");
    }
    if (ev.value().height < floor) continue;
    if (light->Height() <= ev.value().height) {
      // The event claims a block the client hasn't validated yet; sync
      // forward (validated, as always) before judging the proof.
      VCHAIN_RETURN_IF_ERROR(SyncHeaders(light));
      if (light->Height() <= ev.value().height) {
        return Status::VerifyFailed(
            "sp notified for a height beyond its own header tip");
      }
    }
    VCHAIN_RETURN_IF_ERROR(
        verifier_->VerifyNotification(handle->query_, ev.value(), *light));
    floor = ev.value().height + 1;
    out.push_back(ev.TakeValue());
  }
  handle->cursor_ = std::max(frame.value().next_cursor, floor);
  return out;
}

Result<api::ServiceStats> SpClient::Stats() {
  auto resp = Exchange("GET", "/stats", "", "text/plain");
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  return StatsFromJson(resp.value().body);
}

Status SpClient::Healthz() {
  // A 503 here *is* the health answer (degraded SP) — don't spin on it.
  auto resp = Exchange("GET", "/healthz", "", "text/plain",
                       /*idempotent=*/true, /*retry_busy=*/false);
  if (!resp.ok()) return resp.status();
  if (resp.value().status != 200) return StatusFromHttp(resp.value());
  const std::string* engine = FindHeader(resp.value(), "x-vchain-engine");
  if (engine == nullptr ||
      *engine != api::EngineKindName(options_.verify.engine)) {
    return Status::VerifyFailed(
        "sp engine does not match the client's verification parameters");
  }
  return Status::OK();
}

}  // namespace vchain::net

// Minimal binary wire format used for headers, blocks and verification
// objects. Integers are little-endian fixed width; variable-size payloads are
// length-prefixed with a u32. The reader is bounds-checked and returns
// Status::Corruption on truncated or oversized input so that a malicious SP
// can never crash a light node with a malformed VO.

#ifndef VCHAIN_COMMON_SERDE_H_
#define VCHAIN_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace vchain {

/// Append-only encoder.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Raw bytes, no length prefix (fixed-size fields, e.g. hashes).
  void PutFixed(ByteSpan data) { AppendBytes(&buf_, data); }

  /// Length-prefixed (u32) byte string.
  void PutBytes(ByteSpan data) {
    PutU32(static_cast<uint32_t>(data.size()));
    AppendBytes(&buf_, data);
  }

  void PutString(const std::string& s) {
    PutBytes(ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

  const Bytes& bytes() const { return buf_; }
  Bytes TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutLittleEndian(uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Bounds-checked decoder over a non-owning span.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  Status GetU8(uint8_t* out) { return GetLittleEndian(out, 1); }
  Status GetU16(uint16_t* out) { return GetLittleEndian(out, 2); }
  Status GetU32(uint32_t* out) { return GetLittleEndian(out, 4); }
  Status GetU64(uint64_t* out) { return GetLittleEndian(out, 8); }

  Status GetBool(bool* out) {
    uint8_t v = 0;
    VCHAIN_RETURN_IF_ERROR(GetU8(&v));
    if (v > 1) return Status::Corruption("bool byte out of range");
    *out = (v == 1);
    return Status::OK();
  }

  /// Read exactly `n` raw bytes.
  Status GetFixed(size_t n, Bytes* out) {
    if (Remaining() < n) return Status::Corruption("truncated fixed field");
    out->assign(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return Status::OK();
  }

  /// Read a u32-length-prefixed byte string. `max_len` guards against a
  /// hostile length that would force a huge allocation.
  Status GetBytes(Bytes* out, uint32_t max_len = kDefaultMaxLen) {
    uint32_t len = 0;
    VCHAIN_RETURN_IF_ERROR(GetU32(&len));
    if (len > max_len) return Status::Corruption("length prefix too large");
    return GetFixed(len, out);
  }

  Status GetString(std::string* out, uint32_t max_len = kDefaultMaxLen) {
    Bytes tmp;
    VCHAIN_RETURN_IF_ERROR(GetBytes(&tmp, max_len));
    out->assign(tmp.begin(), tmp.end());
    return Status::OK();
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return Remaining() == 0; }
  size_t position() const { return pos_; }

  static constexpr uint32_t kDefaultMaxLen = 1u << 28;  // 256 MiB

 private:
  template <typename T>
  Status GetLittleEndian(T* out, int width) {
    if (Remaining() < static_cast<size_t>(width)) {
      return Status::Corruption("truncated integer field");
    }
    uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    *out = static_cast<T>(v);
    return Status::OK();
  }

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace vchain

#endif  // VCHAIN_COMMON_SERDE_H_

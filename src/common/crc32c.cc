#include "common/crc32c.h"

#include <array>

namespace vchain {
namespace {

// Reflected CRC32C table for polynomial 0x1EDC6F41.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(ByteSpan data, uint32_t init) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  uint32_t crc = init ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace vchain

// CRC32C (Castagnoli polynomial, the RocksDB/LevelDB log-record checksum).
//
// Used by the storage layer to detect torn and bit-rotted records
// independently of the cryptographic hash chain: the CRC answers "did this
// record make it to disk intact" cheaply at open time, while header hashes
// answer "is this the chain the light clients agreed on".

#ifndef VCHAIN_COMMON_CRC32C_H_
#define VCHAIN_COMMON_CRC32C_H_

#include <cstdint>

#include "common/bytes.h"

namespace vchain {

/// CRC32C of `data`, seeded with `init` (pass a previous return value to
/// extend a running checksum across buffers).
uint32_t Crc32c(ByteSpan data, uint32_t init = 0);

}  // namespace vchain

#endif  // VCHAIN_COMMON_CRC32C_H_

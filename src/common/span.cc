#include "common/span.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"

namespace vchain::trace {

SpanTree::SpanTree(const char* root_name) : root_name_(root_name) {
  spans_.reserve(16);
  Span root;
  root.id = kRootSpan;
  root.parent = 0;
  root.name = root_name;
  root.start_ns = metrics::MonotonicNanos();
  spans_.push_back(std::move(root));
}

uint32_t SpanTree::Begin(const char* name, uint32_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return 0;
  }
  Span s;
  s.id = static_cast<uint32_t>(spans_.size()) + 1;
  s.parent = parent;
  s.name = name;
  // Read the clock last, under the lock: the span interval then excludes
  // the Begin call's own locking cost.
  s.start_ns = metrics::MonotonicNanos();
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void SpanTree::End(uint32_t id) {
  if (id == 0) return;
  // Clock first, then lock: the interval excludes the End call's locking.
  uint64_t now = metrics::MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].end_ns = now;
}

void SpanTree::Note(uint32_t id, const char* key, uint64_t value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  spans_[id - 1].notes.push_back(SpanNote{key, value});
}

uint64_t SpanTree::RootDurationNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.front().DurationNs();
}

size_t SpanTree::NumSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

uint64_t SpanTree::DroppedSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t SpanTree::SumDurationsNs(const char* name) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t sum = 0;
  for (const Span& s : spans_) {
    // Literal names make pointer equality tempting, but two translation
    // units may not pool identical literals — compare contents.
    if (std::string_view(s.name) == name) sum += s.DurationNs();
  }
  return sum;
}

uint64_t SpanTree::SumDurationsUnderNs(const char* name,
                                       const char* ancestor) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t sum = 0;
  for (const Span& s : spans_) {
    if (std::string_view(s.name) != name) continue;
    for (uint32_t p = s.parent; p != 0; p = spans_[p - 1].parent) {
      if (std::string_view(spans_[p - 1].name) == ancestor) {
        sum += s.DurationNs();
        break;
      }
    }
  }
  return sum;
}

std::vector<Span> SpanTree::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void SpanTree::AppendJson(std::string* out, size_t max_spans) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t base = spans_.front().start_ns;
  out->push_back('[');
  const size_t n = std::min(spans_.size(), max_spans);
  char buf[160];
  for (size_t i = 0; i < n; ++i) {
    const Span& s = spans_[i];
    if (i != 0) out->push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"id\":%u,\"parent\":%u,\"name\":\"%s\",\"start_ns\":%" PRIu64
                  ",\"duration_ns\":%" PRIu64,
                  s.id, s.parent, s.name,
                  s.start_ns >= base ? s.start_ns - base : 0, s.DurationNs());
    out->append(buf);
    for (const SpanNote& note : s.notes) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64, note.key, note.value);
      out->append(buf);
    }
    out->push_back('}');
  }
  out->push_back(']');
}

namespace {
thread_local AmbientSpan g_ambient;
}  // namespace

AmbientSpan CurrentSpan() { return g_ambient; }

AmbientScope::AmbientScope(SpanTree* tree, uint32_t parent)
    : saved_(g_ambient) {
  g_ambient = AmbientSpan{tree, parent};
}

AmbientScope::~AmbientScope() { g_ambient = saved_; }

TraceRing::TraceRing(size_t capacity, uint64_t sample_every, size_t slow_slots)
    : capacity_(capacity < 1 ? 1 : capacity),
      sample_every_(sample_every),
      slow_slots_(slow_slots) {}

void TraceRing::Offer(std::shared_ptr<SpanTree> tree) {
  if (tree == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = offers_++;
  if (sample_every_ > 0 && seq % sample_every_ == 0) {
    recent_.push_back(Entry{tree, seq, false});
    if (recent_.size() > capacity_) recent_.pop_front();
  }
  if (slow_slots_ > 0) {
    const uint64_t dur = tree->RootDurationNs();
    if (slow_.size() < slow_slots_) {
      slow_.push_back(Entry{std::move(tree), seq, true});
    } else {
      size_t min_i = 0;
      for (size_t i = 1; i < slow_.size(); ++i) {
        if (slow_[i].tree->RootDurationNs() <
            slow_[min_i].tree->RootDurationNs()) {
          min_i = i;
        }
      }
      if (dur > slow_[min_i].tree->RootDurationNs()) {
        slow_[min_i] = Entry{std::move(tree), seq, true};
      }
    }
  }
}

std::vector<TraceRing::Entry> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out(recent_.begin(), recent_.end());
  for (const Entry& e : slow_) {
    bool dup = false;
    for (const Entry& r : recent_) {
      if (r.tree == e.tree) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(e);
  }
  return out;
}

size_t TraceRing::Occupancy() const { return Snapshot().size(); }

uint64_t TraceRing::Offered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return offers_;
}

std::string TraceRing::ToJson(size_t max_spans_per_tree) const {
  std::vector<Entry> entries = Snapshot();
  uint64_t offered = Offered();
  std::string out;
  out.reserve(256 + entries.size() * 512);
  char buf[128];
  std::snprintf(buf, sizeof(buf), "{\"offered\":%" PRIu64 ",\"occupancy\":%zu",
                offered, entries.size());
  out.append(buf);
  out.append(",\"traces\":[");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i != 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%" PRIu64 ",\"retained\":\"%s\",\"root\":\"%s\","
                  "\"duration_ns\":%" PRIu64 ",\"dropped_spans\":%" PRIu64
                  ",\"spans\":",
                  e.seq, e.slowest ? "slowest" : "sampled",
                  e.tree->root_name(), e.tree->RootDurationNs(),
                  e.tree->DroppedSpans());
    out.append(buf);
    e.tree->AppendJson(&out, max_spans_per_tree);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

}  // namespace vchain::trace

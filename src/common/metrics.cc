#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vchain::metrics {

namespace {

/// Prometheus sample-value / le-label formatting: exact integers render
/// without an exponent or trailing ".0" (counters stay grep-able and the
/// linter can parse them as ints), everything else gets enough digits to
/// round-trip monitoring math without drowning the exposition.
std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

/// HELP text escapes backslash and newline per the exposition spec (quotes
/// stay literal there, unlike in label values).
std::string EscapeHelp(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Label values escape per the exposition spec: backslash, double quote,
/// and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` (optionally with a trailing `le`), or "" when
/// there are no labels at all.
std::string RenderLabels(const Labels& labels, const char* le_value) {
  if (labels.empty() && le_value == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  if (le_value != nullptr) {
    if (!first) out += ",";
    out += "le=\"";
    out += le_value;
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

const std::vector<double>& LatencyBucketsSeconds() {
  static const std::vector<double> kBounds = {
      1e-6,   2.5e-6, 5e-6,   1e-5,   2.5e-5, 5e-5,   1e-4,  2.5e-4,
      5e-4,   1e-3,   2.5e-3, 5e-3,   1e-2,   2.5e-2, 5e-2,  1e-1,
      2.5e-1, 5e-1,   1.0,    2.5,    5.0,    10.0};
  return kBounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  uint64_t total = Count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank of the target observation, 1-based; ceil so q=1 lands on the
  // last observation and q=0 on the first.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (i == bounds_.size()) {
      // Overflow bucket: no upper bound to interpolate toward; clamp to
      // the largest finite bound (or 0 for a bound-less summary).
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    double lo = i == 0 ? 0.0 : bounds_[i - 1];
    double hi = bounds_[i];
    if (in_bucket == 0) return hi;
    double frac = static_cast<double>(rank - cum) / in_bucket;
    return lo + (hi - lo) * frac;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

Registry& Registry::Default() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

Registry::Child* Registry::GetChild(const std::string& name,
                                    const std::string& help, Type type,
                                    const Labels& labels,
                                    const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.help = help;
    fam.type = type;
    if (bounds != nullptr) fam.bounds = *bounds;
  } else if (fam.type != type) {
    std::fprintf(stderr,
                 "metrics: family %s re-registered with a different type\n",
                 name.c_str());
    std::abort();
  }
  for (const auto& child : fam.children) {
    if (child->labels == labels) return child.get();
  }
  auto child = std::make_unique<Child>();
  child->labels = labels;
  switch (type) {
    case Type::kCounter:
      child->counter = std::make_unique<Counter>();
      break;
    case Type::kGauge:
      child->gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      child->histogram = std::make_unique<Histogram>(fam.bounds);
      break;
  }
  fam.children.push_back(std::move(child));
  return fam.children.back().get();
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help,
                              const Labels& labels) {
  return GetChild(name, help, Type::kCounter, labels, nullptr)->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  return GetChild(name, help, Type::kGauge, labels, nullptr)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const std::vector<double>& bounds,
                                  const Labels& labels) {
  return GetChild(name, help, Type::kHistogram, labels, &bounds)
      ->histogram.get();
}

size_t Registry::AddCollector(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return id;
}

void Registry::RemoveCollector(size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(id);
}

std::string Registry::WriteText() {
  // Collectors may register metrics or set gauges — run them before the
  // registry lock is held so they can call back in without deadlocking.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  for (const auto& fn : collectors) fn();

  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + EscapeHelp(fam.help) + "\n";
    out += "# TYPE " + name + " ";
    switch (fam.type) {
      case Type::kCounter: out += "counter\n"; break;
      case Type::kGauge: out += "gauge\n"; break;
      case Type::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& child : fam.children) {
      switch (fam.type) {
        case Type::kCounter:
          out += name + RenderLabels(child->labels, nullptr) + " " +
                 FormatValue(static_cast<double>(child->counter->Value())) +
                 "\n";
          break;
        case Type::kGauge:
          out += name + RenderLabels(child->labels, nullptr) + " " +
                 FormatValue(child->gauge->Value()) + "\n";
          break;
        case Type::kHistogram: {
          const Histogram& h = *child->histogram;
          uint64_t cum = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cum += h.BucketCount(i);
            std::string le = FormatValue(h.bounds()[i]);
            out += name + "_bucket" +
                   RenderLabels(child->labels, le.c_str()) + " " +
                   FormatValue(static_cast<double>(cum)) + "\n";
          }
          cum += h.BucketCount(h.bounds().size());
          out += name + "_bucket" + RenderLabels(child->labels, "+Inf") +
                 " " + FormatValue(static_cast<double>(cum)) + "\n";
          out += name + "_sum" + RenderLabels(child->labels, nullptr) + " " +
                 FormatValue(h.Sum()) + "\n";
          out += name + "_count" + RenderLabels(child->labels, nullptr) +
                 " " + FormatValue(static_cast<double>(h.Count())) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::ScopedTimer(Histogram* h)
    : h_(h), start_ns_(h == nullptr ? 0 : MonotonicNanos()) {}

ScopedTimer::~ScopedTimer() {
  if (h_ == nullptr) return;
  h_->Observe(static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9);
}

}  // namespace vchain::metrics

// Wall-clock stopwatch used by the benchmark harness and the SP/user cost
// accounting in experiment drivers.

#ifndef VCHAIN_COMMON_TIMER_H_
#define VCHAIN_COMMON_TIMER_H_

#include <chrono>

namespace vchain {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across many disjoint measured sections, e.g. total SP CPU
/// time over a query window walk.
class CostAccumulator {
 public:
  void Add(double seconds) { total_ += seconds; }
  void AddTimer(const Timer& t) { total_ += t.ElapsedSeconds(); }
  double seconds() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  double total_ = 0;
};

}  // namespace vchain

#endif  // VCHAIN_COMMON_TIMER_H_

// Structured, leveled, dependency-free logging: one record per line, as
// `key=value` pairs (default) or a single JSON object (`SetJsonOutput`).
// Built for machine-parseable operational logs, not printf debugging:
//
//   logging::Info("query_done")
//       .Kv("route", "/query")
//       .Kv("ms", 12.4)
//       .Kv("results", n);
//   // ts=2026-08-07T09:15:02.114Z level=info msg=query_done
//   //   req=5f2a... route=/query ms=12.4 results=3     (one line)
//
// The record is assembled in the LogLine's private buffer and emitted by
// its destructor with a single locked write to stderr, so concurrent
// threads never interleave fragments. Below-threshold records cost one
// relaxed atomic load; every Kv on them is a no-op.
//
// Request-id stamping: the HTTP server wraps each handler invocation in a
// ScopedRequestId, so any log line emitted anywhere under that call —
// service, store, processor — carries `req=<id>` without plumbing the id
// through every signature. The id is thread_local; worker threads each
// serve one request at a time, which is exactly the shape that makes a
// thread-local ambient id correct.

#ifndef VCHAIN_COMMON_LOG_H_
#define VCHAIN_COMMON_LOG_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace vchain::logging {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Global threshold: records below it are dropped at construction.
/// Default kInfo.
void SetMinLevel(Level level);
Level MinLevel();
/// Parses "debug"/"info"/"warn"/"error"/"off"; false on anything else.
bool SetMinLevelFromName(std::string_view name);

/// true → each record is one JSON object per line instead of key=value.
void SetJsonOutput(bool json);
bool JsonOutput();

/// The ambient per-thread request id stamped on every record (empty =
/// omitted). Set via ScopedRequestId around request handling.
const std::string& CurrentRequestId();

class ScopedRequestId {
 public:
  explicit ScopedRequestId(std::string id);
  ~ScopedRequestId();
  ScopedRequestId(const ScopedRequestId&) = delete;
  ScopedRequestId& operator=(const ScopedRequestId&) = delete;

 private:
  std::string saved_;
};

/// One record, emitted on destruction. Move-only temporary; use through
/// Debug()/Info()/Warn()/Error() below.
class LogLine {
 public:
  LogLine(Level level, std::string_view msg);
  ~LogLine();
  LogLine(LogLine&& other) noexcept;
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  LogLine& operator=(LogLine&&) = delete;

  LogLine& Kv(std::string_view key, std::string_view value);
  LogLine& Kv(std::string_view key, const char* value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, const std::string& value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, bool value);
  LogLine& Kv(std::string_view key, double value);
  LogLine& Kv(std::string_view key, uint64_t value);
  LogLine& Kv(std::string_view key, int64_t value);
  LogLine& Kv(std::string_view key, int value) {
    return Kv(key, static_cast<int64_t>(value));
  }
  LogLine& Kv(std::string_view key, unsigned value) {
    return Kv(key, static_cast<uint64_t>(value));
  }

 private:
  void AppendKey(std::string_view key);
  bool enabled_;
  bool json_;
  std::string buf_;
};

inline LogLine Debug(std::string_view msg) {
  return LogLine(Level::kDebug, msg);
}
inline LogLine Info(std::string_view msg) {
  return LogLine(Level::kInfo, msg);
}
inline LogLine Warn(std::string_view msg) {
  return LogLine(Level::kWarn, msg);
}
inline LogLine Error(std::string_view msg) {
  return LogLine(Level::kError, msg);
}

}  // namespace vchain::logging

#endif  // VCHAIN_COMMON_LOG_H_

// Dependency-free metrics substrate: counters, gauges, and fixed-bucket
// latency histograms behind a process-wide registry with a Prometheus
// text-exposition writer.
//
// Design constraints, in order:
//
//   1. Hot-path cost. Every instrument is a handful of relaxed atomic
//      operations — no locks, no allocation, no syscalls. The registry
//      mutex is taken only at registration (once per family/child, at
//      construction time of the instrumented object) and at exposition
//      (a scrape, a few times a minute). Instrument pointers are stable
//      for the life of the registry, so callers register once and keep
//      the raw pointer.
//   2. Exactness. Counters and histogram bucket/count/sum values are
//      exact under concurrency (fetch_add; the double-valued sum uses a
//      compare_exchange loop). Quantiles are estimated from the fixed
//      buckets by linear interpolation — the standard Prometheus
//      histogram trade: cheap writes, bounded error set by the bucket
//      layout.
//   3. No dependencies. Plain C++20; exposition is hand-rolled
//      text/plain; version=0.0.4.
//
// Naming scheme (enforced by convention, checked by tools/check_metrics.py
// in CI): `vchain_<tier>_<name>`, where tier ∈ {store, core, service,
// http}. Counters end in `_total`; latency histograms end in `_seconds`
// and observe seconds as doubles.
//
// Registration is idempotent: asking for an existing (name, labels) pair
// returns the same instrument pointer, so N instances of an instrumented
// object (stores, servers) share one family without coordination. Asking
// for an existing name with a different metric type aborts — that is a
// programming error that would corrupt the exposition.

#ifndef VCHAIN_COMMON_METRICS_H_
#define VCHAIN_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vchain::metrics {

/// Monotonically increasing count. Relaxed atomics: per-event ordering is
/// irrelevant for monitoring, and relaxed fetch_add is a single lock-free
/// RMW on every target we build for.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A value that goes up and down (in-flight requests, degraded flag,
/// last-recovery duration). Stored as a double so one type serves both
/// integral gauges and seconds-valued ones.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  void Sub(double d) { Add(-d); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: cumulative-at-read, per-bucket atomic counts,
/// exact total count and sum. Bucket upper bounds are fixed at
/// construction (ascending, +Inf implicit), so Observe is a binary search
/// plus two relaxed RMWs — no lock, no allocation.
class Histogram {
 public:
  /// `bounds` = ascending finite upper bounds; the +Inf bucket is
  /// implicit. Empty bounds degenerate to a count/sum-only summary.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate from the bucket counts, q in [0, 1]: locate the
  /// bucket holding the q-th observation and interpolate linearly inside
  /// it. Observations beyond the last finite bound clamp to that bound.
  /// Returns 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count of observations <= bounds()[i] (non-cumulative per-bucket
  /// internally; this returns the raw per-bucket count, index
  /// bounds().size() = the +Inf overflow bucket).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  // One extra slot for the +Inf overflow bucket. unique_ptr array because
  // atomics are not movable and the registry stores histograms by value
  // behind stable unique_ptrs anyway.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket layout for latency histograms, in seconds: 1 µs → 10 s,
/// roughly 1-2.5-5 per decade. 22 buckets — fine-grained enough for p99
/// on sub-millisecond ops without bloating the exposition.
const std::vector<double>& LatencyBucketsSeconds();

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Registry of metric families. One process-wide Default() instance is
/// what the library tiers instrument against; tests build their own for
/// isolated golden output.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every tier instruments by default.
  static Registry& Default();

  /// Get-or-create. The returned pointer is stable for the registry's
  /// lifetime. Re-registering the same (name, labels) returns the same
  /// instrument; the same name with a different type aborts.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  /// `bounds` is fixed by the first registration of `name`; later calls
  /// for new label sets reuse the family's layout.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const Labels& labels = {});
  Histogram* GetLatencyHistogram(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels = {}) {
    return GetHistogram(name, help, LatencyBucketsSeconds(), labels);
  }

  /// Collectors run at the top of WriteText, before families are read —
  /// the hook for point-in-time values that live outside the registry
  /// (cache stats snapshots, queue depths). Keep them cheap; they run on
  /// every scrape under no registry lock of their own. Returns an id for
  /// RemoveCollector — mandatory when the collector captures an object
  /// that dies before the (process-lifetime) registry does.
  size_t AddCollector(std::function<void()> fn);
  void RemoveCollector(size_t id);

  /// Prometheus text exposition (version 0.0.4): families sorted by
  /// name, each with one # HELP and one # TYPE line, histogram children
  /// expanded to cumulative _bucket{le=...} plus _sum/_count.
  std::string WriteText();

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Child {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Type type;
    std::vector<double> bounds;  // histograms only
    std::vector<std::unique_ptr<Child>> children;
  };

  Child* GetChild(const std::string& name, const std::string& help,
                  Type type, const Labels& labels,
                  const std::vector<double>* bounds);

  std::mutex mu_;
  // std::map: exposition output is sorted and stable without a sort pass.
  std::map<std::string, Family> families_;
  std::map<size_t, std::function<void()>> collectors_;
  size_t next_collector_id_ = 0;
};

/// RAII seconds-timer into a histogram: observes elapsed wall time on
/// destruction. `h` may be null (no-op) so call sites stay unconditional.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  uint64_t start_ns_;
};

/// Monotonic nanoseconds now — the clock ScopedTimer and the query trace
/// share, so stage sums line up with totals.
uint64_t MonotonicNanos();

}  // namespace vchain::metrics

#endif  // VCHAIN_COMMON_METRICS_H_

// Bounded LRU map shared by the SP-side caches (disjointness proofs in
// core/proof_cache.h, decoded blocks in store/block_source.h) so both keep
// one eviction/bookkeeping implementation.
//
// Semantics: `Get` refreshes recency and counts a hit or miss; `Put` inserts
// (or refreshes an existing key) without touching hit/miss counters and
// evicts the least-recently-used entry past capacity. Pointers returned by
// Get/Put stay valid until the pointed-to entry is evicted or the map is
// cleared (node-based storage — no rehash/reallocation invalidation).
//
// NOT thread-safe, by design: every current user is documented
// single-threaded (see the ROADMAP open item on a concurrent SP).

#ifndef VCHAIN_COMMON_LRU_H_
#define VCHAIN_COMMON_LRU_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace vchain {

struct LruStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

template <typename K, typename V, typename Hash = std::hash<K>>
class LruMap {
 public:
  /// `capacity` = max resident entries; 0 = unbounded.
  explicit LruMap(size_t capacity = 0) : capacity_(capacity) {}

  /// The value for `key` (refreshed to most-recent), or nullptr.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
  }

  /// Insert `value` under `key` (or refresh an existing entry, keeping its
  /// old value), evicting the coldest entry past capacity. Returns the
  /// resident value.
  V* Put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return &it->second->second;
    }
    lru_.emplace_front(key, std::move(value));
    index_.emplace(key, lru_.begin());
    if (capacity_ != 0 && lru_.size() > capacity_) {
      ++stats_.evictions;
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
    return &lru_.front().second;
  }

  size_t size() const { return lru_.size(); }
  size_t capacity() const { return capacity_; }
  const LruStats& stats() const { return stats_; }
  void Clear() {
    lru_.clear();
    index_.clear();
  }

 private:
  using Entry = std::pair<K, V>;

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
  LruStats stats_;
};

}  // namespace vchain

#endif  // VCHAIN_COMMON_LRU_H_

// Fixed-size worker pool shared by the SP-side parallel passes (deferred
// disjointness proofs, parallel multi-scalar multiplication).
//
// Design goals, in order: no per-query thread construction, deadlock-freedom
// under nesting, and deterministic results for callers (the pool only
// schedules; work partitioning stays with the caller). The queue is a plain
// mutex-protected FIFO — the tasks routed here are milliseconds-long proof
// computations, so work stealing would buy nothing.
//
// `ParallelFor` is caller-participating: the submitting thread drains the
// shared index counter alongside the helpers it enqueued, so it completes
// even when every worker is busy (including when a worker itself calls
// `ParallelFor`, which makes nesting safe).

#ifndef VCHAIN_COMMON_THREAD_POOL_H_
#define VCHAIN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vchain {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers) {
    if (num_workers == 0) num_workers = 1;
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t NumWorkers() const { return workers_.size(); }

  /// Fire-and-forget task submission.
  void Submit(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push(std::move(fn));
    }
    cv_.notify_one();
  }

  /// Run fn(0..n-1) with at most `max_workers` concurrent executors (the
  /// caller counts as one). Returns once every invocation has completed.
  void ParallelFor(size_t n, size_t max_workers,
                   std::function<void(size_t)> fn) {
    if (n == 0) return;
    if (n == 1 || max_workers <= 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<ForState>(std::move(fn), n);
    size_t helpers = std::min({max_workers, NumWorkers() + 1, n}) - 1;
    for (size_t h = 0; h < helpers; ++h) {
      Submit([state] { Drain(*state); });
    }
    Drain(*state);
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] {
      return state->finished.load(std::memory_order_acquire) == state->n;
    });
  }

  /// The process-wide pool shared by every query processor and the parallel
  /// MSM; sized to the hardware once, on first use.
  static ThreadPool& Shared() {
    static ThreadPool pool(DefaultParallelism());
    return pool;
  }

  static size_t DefaultParallelism() {
    unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : static_cast<size_t>(hc);
  }

 private:
  struct ForState {
    ForState(std::function<void(size_t)> f, size_t count)
        : fn(std::move(f)), n(count) {}
    std::function<void(size_t)> fn;
    size_t n;
    std::atomic<size_t> next{0};
    std::atomic<size_t> finished{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };

  static void Drain(ForState& state) {
    for (;;) {
      size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state.n) return;
      state.fn(i);
      if (state.finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state.n) {
        std::lock_guard<std::mutex> lock(state.mu);
        state.done_cv.notify_all();
      }
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace vchain

#endif  // VCHAIN_COMMON_THREAD_POOL_H_

#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace vchain::logging {

namespace {

std::atomic<int> g_min_level{static_cast<int>(Level::kInfo)};
std::atomic<bool> g_json{false};

thread_local std::string t_request_id;

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "info";
}

/// ISO-8601 UTC with milliseconds: 2026-08-07T09:15:02.114Z.
std::string NowStamp() {
  using namespace std::chrono;
  auto now = system_clock::now();
  std::time_t secs = system_clock::to_time_t(now);
  int millis = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

/// key=value values are quoted only when they need it, so the common case
/// stays awk-able; quoted values escape backslash, quote, and newline.
bool NeedsQuoting(std::string_view v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendEscaped(std::string* out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        // Strip other control bytes: a log line is one line, always.
        if (static_cast<unsigned char>(c) >= 0x20) *out += c;
    }
  }
}

void AppendKvValue(std::string* out, std::string_view v) {
  if (!NeedsQuoting(v)) {
    *out += v;
    return;
  }
  *out += '"';
  AppendEscaped(out, v);
  *out += '"';
}

void AppendJsonString(std::string* out, std::string_view v) {
  *out += '"';
  for (char c : v) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          *out += esc;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

std::mutex& EmitMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

}  // namespace

void SetMinLevel(Level level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level MinLevel() {
  return static_cast<Level>(g_min_level.load(std::memory_order_relaxed));
}

bool SetMinLevelFromName(std::string_view name) {
  if (name == "debug") SetMinLevel(Level::kDebug);
  else if (name == "info") SetMinLevel(Level::kInfo);
  else if (name == "warn") SetMinLevel(Level::kWarn);
  else if (name == "error") SetMinLevel(Level::kError);
  else if (name == "off") SetMinLevel(Level::kOff);
  else return false;
  return true;
}

void SetJsonOutput(bool json) {
  g_json.store(json, std::memory_order_relaxed);
}

bool JsonOutput() { return g_json.load(std::memory_order_relaxed); }

const std::string& CurrentRequestId() { return t_request_id; }

ScopedRequestId::ScopedRequestId(std::string id)
    : saved_(std::move(t_request_id)) {
  t_request_id = std::move(id);
}

ScopedRequestId::~ScopedRequestId() { t_request_id = std::move(saved_); }

LogLine::LogLine(Level level, std::string_view msg)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      json_(g_json.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  buf_.reserve(160);
  if (json_) {
    buf_ += "{\"ts\":";
    AppendJsonString(&buf_, NowStamp());
    buf_ += ",\"level\":";
    AppendJsonString(&buf_, LevelName(level));
    buf_ += ",\"msg\":";
    AppendJsonString(&buf_, msg);
    if (!t_request_id.empty()) {
      buf_ += ",\"req\":";
      AppendJsonString(&buf_, t_request_id);
    }
  } else {
    buf_ += "ts=";
    buf_ += NowStamp();
    buf_ += " level=";
    buf_ += LevelName(level);
    buf_ += " msg=";
    AppendKvValue(&buf_, msg);
    if (!t_request_id.empty()) {
      buf_ += " req=";
      AppendKvValue(&buf_, t_request_id);
    }
  }
}

LogLine::LogLine(LogLine&& other) noexcept
    : enabled_(other.enabled_),
      json_(other.json_),
      buf_(std::move(other.buf_)) {
  other.enabled_ = false;
}

void LogLine::AppendKey(std::string_view key) {
  if (json_) {
    buf_ += ',';
    AppendJsonString(&buf_, key);
    buf_ += ':';
  } else {
    buf_ += ' ';
    buf_ += key;
    buf_ += '=';
  }
}

LogLine& LogLine::Kv(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  AppendKey(key);
  if (json_) {
    AppendJsonString(&buf_, value);
  } else {
    AppendKvValue(&buf_, value);
  }
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, bool value) {
  if (!enabled_) return *this;
  AppendKey(key);
  buf_ += value ? "true" : "false";
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  AppendKey(key);
  char num[48];
  if (std::isfinite(value)) {
    std::snprintf(num, sizeof(num), "%.6g", value);
    buf_ += num;
  } else if (json_) {
    buf_ += "null";  // JSON has no Inf/NaN literals
  } else {
    buf_ += std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf");
  }
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, uint64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  char num[24];
  std::snprintf(num, sizeof(num), "%" PRIu64, value);
  buf_ += num;
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, int64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  char num[24];
  std::snprintf(num, sizeof(num), "%" PRId64, value);
  buf_ += num;
  return *this;
}

LogLine::~LogLine() {
  if (!enabled_) return;
  if (json_) buf_ += '}';
  buf_ += '\n';
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fwrite(buf_.data(), 1, buf_.size(), stderr);
  std::fflush(stderr);
}

}  // namespace vchain::logging

// Deterministic, seedable PRNG (xoshiro256**). Used by workload generators,
// tests, and trusted-setup sampling so that every experiment is reproducible
// from a seed. Not a CSPRNG; the trusted-setup secret in a deployment would be
// sampled from an OS entropy source instead (see accum/keys.h).

#ifndef VCHAIN_COMMON_RAND_H_
#define VCHAIN_COMMON_RAND_H_

#include <cstdint>

namespace vchain {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seed via splitmix64 expansion, so any 64-bit seed gives a full state.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace vchain

#endif  // VCHAIN_COMMON_RAND_H_

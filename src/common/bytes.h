// Byte-buffer aliases and hex helpers shared across the library.

#ifndef VCHAIN_COMMON_BYTES_H_
#define VCHAIN_COMMON_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace vchain {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

/// Lowercase hex encoding of `data`.
std::string ToHex(ByteSpan data);

/// Decode lowercase/uppercase hex; fails on odd length or non-hex characters.
Result<Bytes> FromHex(const std::string& hex);

/// Append `src` to `dst`.
void AppendBytes(Bytes* dst, ByteSpan src);

}  // namespace vchain

#endif  // VCHAIN_COMMON_BYTES_H_

#include "common/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/metrics.h"

namespace vchain::flight {

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::Record(const char* tier, const char* name, uint64_t a,
                            uint64_t b, uint64_t c) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t now = metrics::MonotonicNanos();
  Slot& slot = slots_[seq % kSlots];
  // Seqlock write: odd version while the fields are in flux. The release
  // fence keeps the field stores (atomic, relaxed) from reordering above the
  // odd store; the release on the even store publishes the fields.
  slot.version.store(2 * seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.ns.store(now, std::memory_order_relaxed);
  slot.tier.store(tier, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.version.store(2 * seq + 2, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(size_t i, Event* out) const {
  const Slot& slot = slots_[i];
  const uint64_t v1 = slot.version.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1) != 0) return false;  // empty or mid-write
  Event e;
  e.ns = slot.ns.load(std::memory_order_relaxed);
  e.tier = slot.tier.load(std::memory_order_relaxed);
  e.name = slot.name.load(std::memory_order_relaxed);
  e.a = slot.a.load(std::memory_order_relaxed);
  e.b = slot.b.load(std::memory_order_relaxed);
  e.c = slot.c.load(std::memory_order_relaxed);
  // The fence keeps the relaxed field loads from sinking below the second
  // version read (classic seqlock reader ordering).
  std::atomic_thread_fence(std::memory_order_acquire);
  const uint64_t v2 = slot.version.load(std::memory_order_relaxed);
  if (v1 != v2) return false;  // a writer landed mid-read; drop the slot
  e.seq = v1 / 2 - 1;
  if (e.tier == nullptr || e.name == nullptr) return false;
  *out = e;
  return true;
}

std::vector<Event> FlightRecorder::Snapshot() const {
  std::vector<Event> out;
  out.reserve(kSlots);
  for (size_t i = 0; i < kSlots; ++i) {
    Event e;
    if (ReadSlot(i, &e)) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

std::string FlightRecorder::ToJson() const {
  std::vector<Event> events = Snapshot();
  std::string out;
  out.reserve(64 + events.size() * 128);
  char buf[192];
  std::snprintf(buf, sizeof(buf), "{\"next_seq\":%" PRIu64 ",\"events\":[",
                NextSeq());
  out.append(buf);
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i != 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%" PRIu64 ",\"ns\":%" PRIu64
                  ",\"tier\":\"%s\",\"name\":\"%s\",\"a\":%" PRIu64
                  ",\"b\":%" PRIu64 ",\"c\":%" PRIu64 "}",
                  e.seq, e.ns, e.tier, e.name, e.a, e.b, e.c);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

void FlightRecorder::DumpToFd(int fd) const {
  // Signal-handler tolerant: stack buffers and write(2) only, no heap, no
  // stdio locking (snprintf into a local buffer is not formally
  // async-signal-safe but does not allocate with glibc for these formats —
  // the pragmatic black-box trade-off).
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "=== flight recorder: %" PRIu64 " events total ===\n",
                        NextSeq());
  if (n > 0) (void)!write(fd, buf, static_cast<size_t>(n));
  // Emit in ring order starting at the oldest live slot so output is
  // seq-ordered without sorting (no heap).
  const uint64_t next = next_.load(std::memory_order_relaxed);
  const size_t start = next > kSlots ? next % kSlots : 0;
  for (size_t k = 0; k < kSlots; ++k) {
    Event e;
    if (!ReadSlot((start + k) % kSlots, &e)) continue;
    n = std::snprintf(buf, sizeof(buf),
                      "[%" PRIu64 "] ns=%" PRIu64
                      " %s/%s a=%" PRIu64 " b=%" PRIu64 " c=%" PRIu64 "\n",
                      e.seq, e.ns, e.tier, e.name, e.a, e.b, e.c);
    if (n > 0) (void)!write(fd, buf, static_cast<size_t>(n));
  }
  n = std::snprintf(buf, sizeof(buf), "=== end flight recorder ===\n");
  if (n > 0) (void)!write(fd, buf, static_cast<size_t>(n));
}

}  // namespace vchain::flight

// FlightRecorder — the process black box: a fixed-size, lock-free ring of
// recent structured events from every tier (HTTP shed/429/408 decisions,
// degraded-mode flips, store recovery and segment rolls, subscription
// checkpoint writes, canary verdicts). Always on, bounded memory, no
// allocation or syscall per event — cheap enough to record on error paths
// and state transitions unconditionally.
//
// Readout: GET /debug/events serves ToJson(); vchain_spd dumps the ring to
// stderr on SIGQUIT (DumpToFd is written to be safe enough for a signal
// handler: stack buffers + write(2), no heap).
//
// Lock-freedom and TSan-cleanliness: every slot field is a relaxed atomic,
// and a per-slot version counter (seqlock style) brackets each write —
// odd while a writer is mid-slot, even when the slot is consistent.
// Readers retry-or-skip on a version mismatch, so a dump running
// concurrently with 8 writers returns only consistent slots and never
// blocks a writer. Two writers landing on the *same* slot concurrently
// (a full ring-size apart in sequence, i.e. one thread 4096 events behind)
// can interleave field stores; the version check makes the reader drop such
// a slot rather than emit a chimera.
//
// Event names and tier labels must be string literals: slots store the
// pointers. Up to three uint64 arguments carry the event's specifics
// (heights, byte counts, status codes); the JSON names them a/b/c — this is
// a black box for humans mid-incident, not a stable schema.

#ifndef VCHAIN_COMMON_FLIGHT_RECORDER_H_
#define VCHAIN_COMMON_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vchain::flight {

struct Event {
  uint64_t seq = 0;  ///< global order; monotonically increasing
  uint64_t ns = 0;   ///< metrics::MonotonicNanos at record time
  const char* tier = "";
  const char* name = "";
  uint64_t a = 0, b = 0, c = 0;
};

class FlightRecorder {
 public:
  static constexpr size_t kSlots = 4096;

  /// The process-wide recorder every tier records into.
  static FlightRecorder& Get();

  /// Record one event. Wait-free: one fetch_add plus relaxed stores.
  /// `tier` and `name` must be string literals.
  void Record(const char* tier, const char* name, uint64_t a = 0,
              uint64_t b = 0, uint64_t c = 0);

  /// Next sequence number to be assigned == events recorded so far.
  uint64_t NextSeq() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Consistent events currently in the ring, oldest first. Slots being
  /// written during the snapshot are skipped.
  std::vector<Event> Snapshot() const;

  /// {"next_seq":N,"events":[...]} — single-line ASCII.
  std::string ToJson() const;

  /// Dump the ring to `fd` as text lines, oldest first. No heap use —
  /// tolerable inside a fatal-signal handler.
  void DumpToFd(int fd) const;

 private:
  FlightRecorder() = default;

  struct Slot {
    // Seqlock version: 0 = never written; 2*seq+1 while writing seq's
    // event; 2*seq+2 once it is consistent.
    std::atomic<uint64_t> version{0};
    std::atomic<uint64_t> ns{0};
    std::atomic<const char*> tier{nullptr};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> a{0}, b{0}, c{0};
  };

  /// Read slot `i` if consistent; false when empty or mid-write.
  bool ReadSlot(size_t i, Event* out) const;

  std::atomic<uint64_t> next_{0};
  std::array<Slot, kSlots> slots_;
};

}  // namespace vchain::flight

#endif  // VCHAIN_COMMON_FLIGHT_RECORDER_H_

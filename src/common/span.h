// Causal span trees + the retention ring behind the introspection plane.
//
// A SpanTree is one request's wall-time decomposition as a tree: every span
// has an id, a parent id, a static name, a monotonic [start, end) interval,
// and optional numeric key=value notes. The query path builds one tree per
// traced request (core::QueryTrace owns the pointer); the flat per-stage
// fields of QueryTrace are *projected* from the spans afterwards
// (QueryTrace::ProjectSpans), so the stage histograms, the slow-query warn
// log, the X-Vchain-Trace header, and GET /debug/traces all read the same
// single measurement — there is no parallel timing mechanism.
//
// Concurrency: a tree is written by the query thread and, during deferred
// proving, by pool workers (prove_task spans), so every mutating method
// takes the tree's mutex. The lock is uncontended in the common case (one
// writer) and each operation is a few stores — tens of nanoseconds against
// milliseconds of proving (the ≤3% overhead bound is asserted by
// bench_query_stages' traced-vs-untraced column).
//
// Span names and note keys must be string literals (static storage): spans
// store the pointer, never a copy, which keeps Begin/End allocation-free
// apart from vector growth up to kMaxSpans.
//
// TraceRing is the retention policy for finished trees: a bounded FIFO of
// every sample_every-th offered tree plus a small always-keep-slowest set,
// so both "what does a typical query look like" and "what did the tail do"
// stay answerable from a live server (GET /debug/traces).

#ifndef VCHAIN_COMMON_SPAN_H_
#define VCHAIN_COMMON_SPAN_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vchain::trace {

/// The root span's id in every tree (created by the SpanTree constructor;
/// parent 0 means "no parent").
inline constexpr uint32_t kRootSpan = 1;

struct SpanNote {
  const char* key;  ///< static literal
  uint64_t value;
};

struct Span {
  uint32_t id = 0;      ///< 1-based; 0 is the null span
  uint32_t parent = 0;  ///< 0 only for the root
  const char* name = "";
  uint64_t start_ns = 0;  ///< metrics::MonotonicNanos at Begin
  uint64_t end_ns = 0;    ///< 0 while the span is still open
  std::vector<SpanNote> notes;

  uint64_t DurationNs() const {
    return end_ns > start_ns ? end_ns - start_ns : 0;
  }
};

/// One request's span tree. Thread-safe; bounded at kMaxSpans (further
/// Begin calls return the null span and bump dropped()).
class SpanTree {
 public:
  /// Spans a tree will hold at most. Generous for a query (≈6 stage spans
  /// plus per-miss block reads and per-proof spans); a pathological cold
  /// walk degrades to dropped-span accounting instead of unbounded memory.
  static constexpr size_t kMaxSpans = 256;

  /// Creates the root span (id kRootSpan) with `root_name`, started now.
  explicit SpanTree(const char* root_name);

  SpanTree(const SpanTree&) = delete;
  SpanTree& operator=(const SpanTree&) = delete;

  /// Open a child of `parent` named `name` (a string literal). Returns the
  /// new span id, or 0 when the tree is full (every Span method accepts 0
  /// as a no-op id).
  uint32_t Begin(const char* name, uint32_t parent = kRootSpan);

  /// Close `id` (no-op for 0 or an unknown id).
  void End(uint32_t id);

  /// Attach a numeric note to `id`. `key` must be a string literal.
  void Note(uint32_t id, const char* key, uint64_t value);

  /// Close the root span; call exactly once, after the request finished.
  void EndRoot() { End(kRootSpan); }

  const char* root_name() const { return root_name_; }
  /// Root span wall time; 0 until EndRoot.
  uint64_t RootDurationNs() const;

  size_t NumSpans() const;
  uint64_t DroppedSpans() const;

  /// Sum of DurationNs over spans named `name`.
  uint64_t SumDurationsNs(const char* name) const;
  /// Sum of DurationNs over spans named `name` that have an ancestor named
  /// `ancestor` — e.g. inline "prove" spans under the "match_walk" span,
  /// which the stage projection subtracts to keep stages non-overlapping.
  uint64_t SumDurationsUnderNs(const char* name, const char* ancestor) const;

  std::vector<Span> Snapshot() const;

  /// Append the spans as a JSON array to `*out`: single-line ASCII (header
  /// safe), start/end rebased to the root's start. At most `max_spans` are
  /// emitted (the root always first); the caller can read DroppedSpans()
  /// plus the emitted count against NumSpans() to detect truncation. Names
  /// and note keys are literals under our control, so no string escaping.
  void AppendJson(std::string* out, size_t max_spans = kMaxSpans) const;

 private:
  const char* root_name_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;  // spans_[i].id == i + 1
  uint64_t dropped_ = 0;
};

/// RAII Begin/End. `tree` may be null (whole object is a no-op), so call
/// sites stay unconditional.
class ScopedSpan {
 public:
  ScopedSpan(SpanTree* tree, const char* name, uint32_t parent = kRootSpan)
      : tree_(tree), id_(tree != nullptr ? tree->Begin(name, parent) : 0) {}
  ~ScopedSpan() {
    if (tree_ != nullptr) tree_->End(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint32_t id() const { return id_; }
  void Note(const char* key, uint64_t value) {
    if (tree_ != nullptr) tree_->Note(id_, key, value);
  }

 private:
  SpanTree* tree_;
  uint32_t id_;
};

/// Ambient (thread-local) span context, for layers that sit under an
/// instrumented caller but have no trace parameter in their interface —
/// the store's block-read path, the subscription drain inside Append. The
/// instrumented caller installs an AmbientScope; deeper code reads
/// CurrentSpan() and attaches children if a tree is active.
struct AmbientSpan {
  SpanTree* tree = nullptr;
  uint32_t parent = 0;
};

AmbientSpan CurrentSpan();

class AmbientScope {
 public:
  AmbientScope(SpanTree* tree, uint32_t parent);
  ~AmbientScope();
  AmbientScope(const AmbientScope&) = delete;
  AmbientScope& operator=(const AmbientScope&) = delete;

 private:
  AmbientSpan saved_;
};

/// Retention ring for finished trees: keeps every `sample_every`-th offered
/// tree (FIFO of `capacity`) plus the `slow_slots` slowest by root duration.
/// Offer() is called once per finished request; Snapshot/ToJson serve
/// GET /debug/traces.
class TraceRing {
 public:
  /// `sample_every` = 0 disables sampled retention (only the slowest set is
  /// kept); 1 retains every offer until FIFO eviction.
  TraceRing(size_t capacity, uint64_t sample_every, size_t slow_slots = 8);

  void Offer(std::shared_ptr<SpanTree> tree);

  struct Entry {
    std::shared_ptr<SpanTree> tree;
    uint64_t seq = 0;      ///< 0-based offer sequence number
    bool slowest = false;  ///< retained by the slowest rule (else sampled)
  };

  /// Retained entries, oldest first, sampled before slowest-only.
  std::vector<Entry> Snapshot() const;

  /// Trees currently retained (a tree held by both rules counts once).
  size_t Occupancy() const;
  /// Total trees ever offered.
  uint64_t Offered() const;

  /// {"offered":N,"occupancy":N,"traces":[...]} — single-line ASCII.
  std::string ToJson(size_t max_spans_per_tree = SpanTree::kMaxSpans) const;

 private:
  const size_t capacity_;
  const uint64_t sample_every_;
  const size_t slow_slots_;
  mutable std::mutex mu_;
  uint64_t offers_ = 0;
  std::deque<Entry> recent_;
  std::vector<Entry> slow_;  // unordered; evict current minimum on overflow
};

}  // namespace vchain::trace

#endif  // VCHAIN_COMMON_SPAN_H_

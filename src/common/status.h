// RocksDB-style status / result types used across all vchain public APIs.
// The library does not throw exceptions across public boundaries; fallible
// operations return Status (or Result<T> when they also produce a value).

#ifndef VCHAIN_COMMON_STATUS_H_
#define VCHAIN_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vchain {

/// Outcome of a fallible operation.
///
/// Verification failures are deliberately a distinct code (`kVerifyFailed`)
/// from malformed input (`kInvalidArgument`) and wire-format problems
/// (`kCorruption`): a light node treats the first as "the SP is cheating" and
/// the latter two as transport/programming errors.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kVerifyFailed,
    kNotSupported,
    kInternal,
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status VerifyFailed(std::string msg) {
    return Status(Code::kVerifyFailed, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  /// The service exists but cannot take this request right now (overload,
  /// degraded read-only mode). Retryable, unlike kInternal.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // Typed predicates, one per taxonomy entry, so call sites can branch on a
  // class of failure without spelling out the enum
  // (`st.IsInvalidArgument()` instead of `st.code() == Code::k...`).
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsVerifyFailed() const { return code_ == Code::kVerifyFailed; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// Human-readable "CODE: message" form for logs and test failure output.
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "UNKNOWN";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
      case Code::kNotFound: name = "NOT_FOUND"; break;
      case Code::kCorruption: name = "CORRUPTION"; break;
      case Code::kVerifyFailed: name = "VERIFY_FAILED"; break;
      case Code::kNotSupported: name = "NOT_SUPPORTED"; break;
      case Code::kInternal: name = "INTERNAL"; break;
      case Code::kUnavailable: name = "UNAVAILABLE"; break;
    }
    return message_.empty() ? std::string(name)
                            : std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Value-or-Status. `value()` asserts on success; check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace vchain

/// Propagate a non-OK status to the caller (function must return Status).
#define VCHAIN_RETURN_IF_ERROR(expr)               \
  do {                                             \
    ::vchain::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // VCHAIN_COMMON_STATUS_H_
